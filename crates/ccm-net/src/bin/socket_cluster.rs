//! Demo: an N-node cooperative caching cluster whose peer traffic runs
//! over real TCP connections, serving the synthetic trace workload with
//! one client thread per node and verifying every byte against the
//! backing-store ground truth.
//!
//! Usage: `cargo run --release -p ccm-net --bin socket_cluster [nodes] [ops] [--serve]
//! [--join] [--write-mix] [--file-store <dir>] [--replay <preset>]`
//! (defaults: 4 nodes, 4000 reads total).
//!
//! With `--file-store <dir>` the cluster is backed by a real on-disk block
//! store (`ccm-disk`'s `FileStore`): the first run populates `<dir>` from
//! the synthetic ground truth, later runs reopen it, and every node's
//! misses go through its asynchronous disk service against actual file
//! I/O. Byte verification still holds — the file store must serve exactly
//! the synthetic content it was populated with.
//!
//! With `--replay <preset>` (calgary, clarknet, nasa, rutgers) the run is
//! handed to `ccm-load`: the preset's recorded trace stream replayed over
//! this cluster by closed-loop clients with a warm-up/measurement split,
//! every byte verified, and the reconciled run report printed as JSON —
//! the same cell format `bench_load` writes to `BENCH_load.json`, with
//! `[ops]` sizing the measurement window.
//!
//! With `--write-mix` the cluster runs a mixed read/write workload over a
//! writable in-memory store in write-back mode with the ghost-LRU
//! admission filter on: each node owns a disjoint slice of the file set
//! and overwrites blocks of its own files while everyone reads the shared
//! Zipf stream over TCP. Owned reads are verified byte-exact against the
//! expected post-write image, the dirty set is flushed at the end, and
//! every write is verified durable in the backing store.
//!
//! With `--join` the cluster starts with one slot cold (n-1 members), runs
//! half the workload, then brings the last slot into the cluster live:
//! the joiner absorbs a re-mastered share of the resident blocks, the
//! heartbeat failure detector watches every member, and the hint-based
//! block-location directory (per-node hint tables, corrected on use) is
//! used in place of the paper's perfect directory. Byte verification holds
//! across the transition, and the run prints the hint-accuracy counters.
//!
//! With `--serve` the workload runs through per-node HTTP front ends
//! (`GET /file/<id>`) instead of direct middleware handles, and the
//! process then stays up serving `/metrics` (Prometheus text) and
//! `/debug/trace` (JSON) on every node — point `ccmtop` or `curl` at the
//! printed addresses; Ctrl-C to exit.
//!
//! With `--front <policy>` (round-robin, consistent-hash, content-aware,
//! load-aware) the workload instead goes through `ccm-front`'s dispatching
//! front tier: requests arrive round-robin at per-node HTTP endpoints, the
//! chosen policy picks the serving node (handing the request off when that
//! is not the arrival endpoint), and the cooperative caching middleware
//! serves the blocks over this crate's TCP peer transport. Every body is
//! verified against the backing store and the per-node dispatch counters
//! are printed on shutdown.

use ccm_core::{
    AdmissionConfig, BlockId, DirectoryKind, FileId, NodeId, ReplacementPolicy, BLOCK_SIZE,
};
use ccm_front::{CcmBackend, FrontBackend, FrontClient, FrontTier, PolicyKind};
use ccm_httpd::HttpCluster;
use ccm_load::LoadSpec;
use ccm_net::TcpLan;
use ccm_obs::Registry;
use ccm_rt::store::{read_file_direct, BlockStore};
use ccm_rt::{
    Catalog, FileStore, MemStore, Membership, Middleware, RtConfig, SyntheticStore, WriteConfig,
};
use ccm_traces::{Preset, SynthConfig};
use simcore::Rng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let serve = args.iter().any(|a| a == "--serve");
    args.retain(|a| a != "--serve");
    let join = args.iter().any(|a| a == "--join");
    args.retain(|a| a != "--join");
    let write_mix = args.iter().any(|a| a == "--write-mix");
    args.retain(|a| a != "--write-mix");
    let file_store_dir = args.iter().position(|a| a == "--file-store").map(|i| {
        assert!(i + 1 < args.len(), "--file-store needs a directory");
        let dir = args[i + 1].clone();
        args.drain(i..=i + 1);
        dir
    });
    let front = args.iter().position(|a| a == "--front").map(|i| {
        assert!(
            i + 1 < args.len(),
            "--front needs a policy (round-robin, consistent-hash, content-aware, load-aware)"
        );
        let policy = PolicyKind::parse(&args[i + 1])
            .unwrap_or_else(|| panic!("unknown dispatch policy {:?}", args[i + 1]));
        args.drain(i..=i + 1);
        policy
    });
    let replay = args.iter().position(|a| a == "--replay").map(|i| {
        assert!(
            i + 1 < args.len(),
            "--replay needs a preset name (calgary, clarknet, nasa, rutgers)"
        );
        let name = args[i + 1].clone();
        args.drain(i..=i + 1);
        name
    });
    let nodes: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(4);
    let ops: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4_000);
    assert!(nodes >= 2, "a cluster needs at least 2 nodes");

    if let Some(name) = replay {
        replay_preset(&name, nodes, ops);
        return;
    }

    // A small web-trace stand-in: Zipf popularity, log-normal body sizes.
    let wl = SynthConfig {
        name: "socket-demo".into(),
        n_files: 400,
        mean_size: 12_000.0,
        total_bytes: Some(8 << 20),
        seed: 0xD3110,
        ..SynthConfig::default()
    }
    .build();
    let catalog = Catalog::new(wl.sizes().to_vec());
    let synth = SyntheticStore::new(catalog.clone(), 0xD3110);
    // The middleware reads the same [`BlockStore`] either way; the file
    // store just makes every miss a real positional read of blocks.dat.
    let store: Arc<dyn BlockStore> = match &file_store_dir {
        Some(dir) => {
            let dir = std::path::Path::new(dir);
            let fs = if dir.join("manifest.txt").exists() {
                println!("reopening file-backed store under {}", dir.display());
                FileStore::open(dir).expect("open file store")
            } else {
                println!("populating file-backed store under {}", dir.display());
                FileStore::create(dir, &catalog, &synth).expect("create file store")
            };
            assert_eq!(
                fs.catalog().sizes(),
                catalog.sizes(),
                "existing store under {} serves a different catalog",
                dir.display()
            );
            Arc::new(fs)
        }
        None => Arc::new(synth),
    };
    let total_blocks: usize = wl
        .sizes()
        .iter()
        .map(|s| (*s as usize).div_ceil(BLOCK_SIZE as usize))
        .sum();
    // Per-node memory holds ~1/(2·nodes) of the file set: small enough that
    // cooperation (remote hits, eviction forwarding) must carry the load.
    let capacity_blocks = (total_blocks / (2 * nodes)).max(8);

    // One registry spans every layer: the TCP transport's per-link series,
    // the middleware's hit-class counters, and (with --serve) the HTTP
    // front end's latency histograms all land in the same /metrics page.
    let registry = Registry::new();
    let lan = Arc::new(TcpLan::loopback_obs(nodes, &registry).expect("bind loopback listeners"));
    for i in 0..nodes {
        println!("node {i}: peer transport on {}", lan.addr(NodeId(i as u16)));
    }
    let cfg = RtConfig {
        nodes,
        capacity_blocks,
        policy: ReplacementPolicy::MasterPreserving,
        fetch_timeout: Duration::from_secs(2),
        obs: Some(registry.clone()),
        ..RtConfig::default()
    };

    if write_mix {
        write_mix_demo(cfg, catalog, lan, &wl, ops);
        return;
    }
    if serve {
        serve_http(cfg, catalog, store, lan, ops);
        return;
    }
    if let Some(policy) = front {
        front_demo(cfg, catalog, store, lan, &wl, ops, policy);
        return;
    }
    if join {
        join_demo(cfg, catalog, store, lan, &wl, ops);
        return;
    }

    let mw = Arc::new(Middleware::start_on(
        cfg,
        catalog.clone(),
        store.clone(),
        lan.clone(),
    ));

    let start = Instant::now();
    let workers: Vec<_> = (0..nodes)
        .map(|i| {
            let node = NodeId(i as u16);
            let mw = mw.clone();
            let store = store.clone();
            let catalog = catalog.clone();
            let wl = wl.clone();
            let per_node = ops / nodes as u64;
            std::thread::spawn(move || {
                let mut rng = Rng::new(0xD3110).substream(10 + i as u64);
                let mut bytes = 0u64;
                for op in 0..per_node {
                    let file = FileId(wl.sample(&mut rng).0);
                    let got = mw.handle(node).read_file(file);
                    let want = read_file_direct(&*store, &catalog, file);
                    assert_eq!(got, want, "node {i} op {op}: bytes corrupted");
                    bytes += got.len() as u64;
                }
                bytes
            })
        })
        .collect();
    let bytes: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .sum();
    let elapsed = start.elapsed();

    mw.quiesce();
    mw.check_invariants();
    let stats = mw.stats();
    let fallbacks = mw.store_fallbacks();
    let net = lan.net_stats();

    let accesses = stats.local_hits + stats.remote_hits + stats.disk_reads;
    println!(
        "\n{} reads ({:.1} MB) across {} nodes in {:.2?} — {:.1} MB/s",
        ops,
        bytes as f64 / (1 << 20) as f64,
        nodes,
        elapsed,
        bytes as f64 / (1 << 20) as f64 / elapsed.as_secs_f64(),
    );
    println!(
        "block accesses: {accesses} ({:.1}% local, {:.1}% remote, {:.1}% disk; {fallbacks} fallbacks)",
        100.0 * stats.local_hits as f64 / accesses as f64,
        100.0 * stats.remote_hits as f64 / accesses as f64,
        100.0 * stats.disk_reads as f64 / accesses as f64,
    );
    println!(
        "wire: {} connections, {} frames sent, {} frames received, {} teardowns",
        net.connects, net.frames_sent, net.frames_received, net.teardowns,
    );
    println!("every byte verified against the backing store — cluster OK");
    drop(mw);
}

/// `--replay <preset>`: hand the cluster to `ccm-load` — closed-loop
/// clients replay the preset's recorded stream over a fresh `TcpLan`, the
/// driver verifies every byte, and the reconciled run report is printed
/// as one `BENCH_load.json`-style JSON cell.
fn replay_preset(name: &str, nodes: usize, ops: u64) {
    let preset = Preset::all()
        .into_iter()
        .find(|p| p.name() == name)
        .unwrap_or_else(|| {
            panic!("unknown preset {name:?}; expected calgary, clarknet, nasa or rutgers")
        });
    let mut spec = LoadSpec::new(preset);
    spec.nodes = nodes;
    spec.measure_requests = ops as usize;
    spec.warmup_requests = (ops / 2) as usize;
    let lan = Arc::new(TcpLan::loopback(nodes).expect("bind loopback listeners"));
    for i in 0..nodes {
        println!("node {i}: peer transport on {}", lan.addr(NodeId(i as u16)));
    }
    println!(
        "replaying {} over TCP: {} nodes x {} clients, {} warm-up + {} measured requests\n",
        preset.name(),
        nodes,
        spec.clients_per_node,
        spec.warmup_requests,
        spec.measure_requests,
    );
    let report = ccm_load::run_on(&spec, lan, "tcp");
    println!("{}", report.summary());
    println!("{}", report.to_json());
    assert!(report.reconciled, "driver and runtime counters disagree");
    println!("\nevery byte verified against the backing store — replay OK");
}

/// `--join`: dynamic-membership demo. The cluster starts with the last
/// slot provisioned but cold, serves half the workload on the hint-based
/// directory with the heartbeat monitor running, then joins the cold slot
/// live — re-mastering a share of the resident blocks onto it — and
/// serves the rest through all nodes, verifying every byte throughout.
fn join_demo(
    cfg: RtConfig,
    catalog: Catalog,
    store: Arc<dyn BlockStore>,
    lan: Arc<TcpLan>,
    wl: &ccm_traces::Workload,
    ops: u64,
) {
    let nodes = cfg.nodes;
    let joiner = NodeId((nodes - 1) as u16);
    let mw = Middleware::start_member(
        cfg,
        catalog.clone(),
        store.clone(),
        lan,
        Membership::with_initial(nodes, nodes - 1),
        DirectoryKind::Hint,
    );
    mw.start_heartbeat(Duration::from_millis(50), Duration::from_millis(250), 3);
    println!(
        "\ncluster up: {} of {nodes} slots members, {joiner:?} provisioned cold; \
         hint directory + heartbeat monitor active",
        nodes - 1
    );

    let mut rng = Rng::new(0xD3110).substream(20);
    let mut drive = |mw: &Middleware, members: usize, count: u64| {
        for op in 0..count {
            let node = NodeId(rng.next_below(members as u64) as u16);
            let file = FileId(wl.sample(&mut rng).0);
            let got = mw.handle(node).read_file(file);
            let want = read_file_direct(&*store, &catalog, file);
            assert_eq!(got, want, "op {op}: bytes corrupted");
        }
    };

    drive(&mw, nodes - 1, ops / 2);
    mw.quiesce();
    let moved = mw.join_node(joiner);
    println!(
        "{joiner:?} joined at epoch {}: {moved} blocks re-mastered onto it",
        mw.epoch()
    );
    drive(&mw, nodes, ops - ops / 2);
    mw.quiesce();
    mw.check_invariants();
    mw.audit_quiescent();

    let h = mw.hint_stats();
    let stats = mw.stats();
    println!(
        "hint directory: {} lookups — {} correct, {} stale, {} missing, {} wasted hops",
        h.lookups, h.correct, h.stale, h.missing, h.forward_hops
    );
    println!(
        "protocol: {} local, {} remote, {} disk; {} remasters",
        stats.local_hits, stats.remote_hits, stats.disk_reads, stats.remasters
    );
    println!("every byte verified across the join — membership OK");
    mw.shutdown();
}

/// `--write-mix`: read/write coherence demo over TCP. The cluster runs in
/// write-back mode (dirty masters, bounded dirty budget) with the
/// ghost-LRU admission filter on, backed by a writable in-memory store.
/// Each node owns the files `f` with `f % nodes == node` and overwrites a
/// block of an owned file every 8th operation; every node reads the
/// shared Zipf stream. Owned reads are verified byte-exact against the
/// expected post-write image (pristine bytes with the node's own last
/// write spliced in — safe because owners are the only writers of their
/// files). At the end the dirty set is flushed and every written block is
/// read back raw from the backing store and verified durable.
fn write_mix_demo(
    mut cfg: RtConfig,
    catalog: Catalog,
    lan: Arc<TcpLan>,
    wl: &ccm_traces::Workload,
    ops: u64,
) {
    let nodes = cfg.nodes;
    cfg.write = WriteConfig::back(64);
    cfg.admission = Some(AdmissionConfig::new(256));
    let store = Arc::new(MemStore::new(catalog.clone(), 0xD3110));
    let mw = Arc::new(Middleware::start_on(
        cfg,
        catalog.clone(),
        store.clone(),
        lan,
    ));
    println!(
        "\nwrite-back cluster up: dirty budget 64, ghost-LRU admission on; \
         node i owns files f % {nodes} == i"
    );

    let start = Instant::now();
    let workers: Vec<_> = (0..nodes)
        .map(|i| {
            let node = NodeId(i as u16);
            let mw = mw.clone();
            let catalog = catalog.clone();
            let wl = wl.clone();
            let per_node = ops / nodes as u64;
            std::thread::spawn(move || {
                let pristine = SyntheticStore::new(catalog.clone(), 0xD3110);
                let h = mw.handle(node);
                let mut rng = Rng::new(0xD3110).substream(40 + i as u64);
                // file -> (block index, last payload this node wrote)
                let mut written: std::collections::HashMap<u32, (u32, Vec<u8>)> =
                    std::collections::HashMap::new();
                for op in 0..per_node {
                    let file = FileId(wl.sample(&mut rng).0);
                    let owned = file.0 as usize % nodes == i;
                    if owned && op % 8 == 7 {
                        let b = rng.next_below(catalog.blocks_of(file) as u64) as u32;
                        let block = BlockId::new(file, b);
                        let fill = (op as u8) ^ (i as u8) ^ 0x5A;
                        let payload = vec![fill; catalog.block_bytes(block) as usize];
                        h.write_block(block, &payload)
                            .expect("MemStore accepts writes");
                        written.insert(file.0, (b, payload));
                    } else {
                        let got = h.read_file(file);
                        if owned {
                            let mut want = read_file_direct(&pristine, &catalog, file);
                            if let Some((b, payload)) = written.get(&file.0) {
                                let off = (*b as u64 * BLOCK_SIZE) as usize;
                                want[off..off + payload.len()].copy_from_slice(payload);
                            }
                            assert_eq!(got, want, "node {i} op {op}: wrong bytes for owned file");
                        }
                    }
                }
                written
            })
        })
        .collect();
    let written: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();
    let elapsed = start.elapsed();

    mw.quiesce();
    let flushed = mw.flush_dirty();
    mw.check_invariants();
    assert!(
        mw.lost_writes().is_empty(),
        "no crash, so nothing may be lost"
    );
    let mut writes_total = 0u64;
    for per_node in &written {
        for (&file, &(b, ref payload)) in per_node {
            let got = store.read_block(BlockId::new(FileId(file), b));
            assert_eq!(
                &got, payload,
                "file {file} block {b} not durable after flush"
            );
            writes_total += 1;
        }
    }
    let ws = mw.write_stats();
    let adm = mw.admission_stats();
    let stats = mw.stats();
    println!(
        "\n{} mixed ops across {} nodes in {:.2?} — {} writes acked, {} dirty flushed at exit",
        ops, nodes, elapsed, ws.writes, flushed
    );
    println!(
        "write-back: {} flushes total, {} dirty now, {} lost, {} recovered",
        ws.flushes, ws.dirty, ws.lost, ws.recovered
    );
    println!(
        "admission: {} admitted ({} ghost hits), {} one-touch rejections",
        adm.admitted, adm.ghost_hits, adm.rejected
    );
    println!(
        "protocol: {} local, {} remote, {} disk, {} invalidations",
        stats.local_hits, stats.remote_hits, stats.disk_reads, stats.invalidations
    );
    println!(
        "{writes_total} distinct written blocks read back raw from the store — all durable; \
         every owned read verified byte-exact — write mix OK"
    );
    match Arc::try_unwrap(mw) {
        Ok(mw) => mw.shutdown(),
        Err(_) => unreachable!("all worker threads joined"),
    }
}

/// `--front <policy>`: the dispatching front tier over the TCP peer
/// transport. Requests arrive round-robin at the per-node endpoints (as
/// rotating DNS would deliver them), the policy picks the serving node,
/// and the cooperative caching middleware serves the blocks. Prints the
/// per-node dispatch counters and the cache hit breakdown on shutdown.
fn front_demo(
    cfg: RtConfig,
    catalog: Catalog,
    store: Arc<dyn BlockStore>,
    lan: Arc<TcpLan>,
    wl: &ccm_traces::Workload,
    ops: u64,
    policy: PolicyKind,
) {
    let nodes = cfg.nodes;
    let registry = cfg
        .obs
        .clone()
        .expect("demo config always carries a registry");
    let mw = Arc::new(Middleware::start_on(
        cfg,
        catalog.clone(),
        store.clone(),
        lan,
    ));
    let backend: Arc<dyn FrontBackend> = Arc::new(CcmBackend::new(mw.clone()));
    let dispatch = policy.build(&registry, nodes);
    let tier = FrontTier::start(backend, dispatch, registry);
    println!();
    for (i, addr) in tier.addrs().iter().enumerate() {
        println!("endpoint {i}: http://{addr}  (GET /file/<id>, /front/stats, /metrics)");
    }

    // One keep-alive connection per endpoint; request i arrives at
    // endpoint i mod nodes, exactly what round-robin DNS would do.
    let mut conns: Vec<FrontClient> = tier
        .addrs()
        .iter()
        .map(|&a| FrontClient::connect(a).expect("connect to front endpoint"))
        .collect();
    let start = Instant::now();
    let mut rng = Rng::new(0xF407).substream(1);
    let mut bytes = 0u64;
    for op in 0..ops {
        let file = FileId(wl.sample(&mut rng).0);
        let resp = conns[(op % nodes as u64) as usize]
            .get(&format!("/file/{}", file.0))
            .expect("front-door GET");
        assert_eq!(resp.status, 200, "op {op}: unexpected status");
        let want = read_file_direct(&*store, &catalog, file);
        assert_eq!(resp.body, want, "op {op}: bytes corrupted");
        bytes += resp.body.len() as u64;
    }
    let elapsed = start.elapsed();

    mw.quiesce();
    mw.check_invariants();
    let stats = mw.stats();
    let accesses = stats.local_hits + stats.remote_hits + stats.disk_reads;
    println!(
        "\n{} front-door requests ({:.1} MB) across {} endpoints in {:.2?} — {:.1} req/s",
        ops,
        bytes as f64 / (1 << 20) as f64,
        nodes,
        elapsed,
        ops as f64 / elapsed.as_secs_f64(),
    );
    println!("dispatch: {}", tier.dispatch_summary());
    println!(
        "blocks: {accesses} accesses ({:.1}% local, {:.1}% remote, {:.1}% disk)",
        100.0 * stats.local_hits as f64 / accesses as f64,
        100.0 * stats.remote_hits as f64 / accesses as f64,
        100.0 * stats.disk_reads as f64 / accesses as f64,
    );
    println!("every byte verified through the front door — front tier OK");
    drop(conns);
    tier.shutdown();
    match Arc::try_unwrap(mw) {
        Ok(mw) => mw.shutdown(),
        Err(_) => { /* a handle outlived us; Drop will clean up */ }
    }
}

/// `--serve`: HTTP front ends over the TCP peer transport. Warms the
/// cluster with `ops` verified HTTP reads, then serves until killed.
fn serve_http(
    cfg: RtConfig,
    catalog: Catalog,
    store: Arc<dyn BlockStore>,
    lan: Arc<TcpLan>,
    ops: u64,
) {
    let nodes = cfg.nodes;
    let cluster = HttpCluster::start_on(cfg, catalog.clone(), store.clone(), lan);
    println!();
    for (i, addr) in cluster.addrs().iter().enumerate() {
        println!("node {i}: http://{addr}  (GET /file/<id>, /metrics, /debug/trace)");
    }

    let check_store = store.clone();
    let check_catalog = catalog.clone();
    let report = ccm_httpd::client::load_run(
        cluster.addrs(),
        catalog.num_files() as u32,
        nodes,
        (ops as usize) / nodes,
        move |id, body| body == read_file_direct(&*check_store, &check_catalog, FileId(id)),
    );
    println!(
        "\nwarmup: {} HTTP reads ok, {} failed — bodies verified against the backing store",
        report.ok, report.failed
    );
    let addrs: Vec<String> = cluster.addrs().iter().map(|a| a.to_string()).collect();
    println!(
        "scrape:  cargo run -p ccm-obs --bin ccmtop -- {}",
        addrs.join(" ")
    );
    println!("serving until killed (Ctrl-C)");
    loop {
        std::thread::park();
    }
}
