//! The wire image of [`PeerMsg`] and its hand-rolled binary codec.
//!
//! `PeerMsg::BlockRequest` carries an in-band reply channel — a structure
//! that cannot leave the process. On the wire that channel becomes a
//! request id: the requester keeps `req_id → reply sender` in a pending
//! table (see [`crate::tcp`]) and the responder echoes the id back on
//! [`WireMsg::BlockReply`]. [`PeerMsg::Barrier`] splits the same way into
//! [`WireMsg::Barrier`] / [`WireMsg::BarrierAck`]. `PeerMsg::Shutdown` has
//! no wire form at all: it is control-plane and stays node-local.
//!
//! ## Frame format
//!
//! Every frame is a little-endian length prefix followed by a tagged body
//! (all integers little-endian):
//!
//! ```text
//! frame        := len:u32  payload            len = payload length, bytes
//! payload      := tag:u8 body
//! tag 0 Hello        := version:u8 node:u16
//! tag 1 BlockRequest := req_id:u64 block
//! tag 2 BlockReply   := req_id:u64 present:u8 [len:u32 data]   (if present)
//! tag 3 Forward      := block present:u8 [displaced_block] len:u32 data
//! tag 4 Invalidate   := block
//! tag 5 Barrier      := req_id:u64
//! tag 6 BarrierAck   := req_id:u64
//! tag 7 Ping         := req_id:u64
//! tag 8 Pong         := req_id:u64
//! tag 9 WriteInval   := block version:u64
//! block        := file:u32 index:u32
//! ```
//!
//! A payload longer than [`MAX_FRAME`] (1 MiB — two orders of magnitude
//! above the 8 KB block size) is rejected before allocation, so a garbage
//! length prefix cannot balloon memory. Decoding is exact: truncated
//! bodies, unknown tags, non-boolean `present` bytes, and trailing garbage
//! are all errors, never silently tolerated.
//!
//! No registry dependencies: this codec is ~200 lines of explicit
//! byte-shuffling, consistent with the workspace's everything-in-tree rule.
//!
//! [`PeerMsg`]: ccm_rt::PeerMsg

use ccm_core::{BlockId, FileId, NodeId};
use std::io::{self, Read, Write};

/// Wire protocol version, carried in [`WireMsg::Hello`]; bump on any frame
/// layout change so mismatched peers fail the handshake instead of
/// misparsing each other. Version 2 added the heartbeat frames
/// ([`WireMsg::Ping`] / [`WireMsg::Pong`]); version 3 added the coherence
/// write invalidation ([`WireMsg::WriteInvalidate`]).
pub const WIRE_VERSION: u8 = 3;

/// Hard upper bound on a frame payload, in bytes.
pub const MAX_FRAME: u32 = 1 << 20;

/// A peer message as it crosses the socket. The in-process reply channels
/// of `PeerMsg` are replaced by `req_id` correlation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMsg {
    /// Connection preamble: the first frame on every connection, naming the
    /// protocol version and the connecting node.
    Hello {
        /// Must equal [`WIRE_VERSION`].
        version: u8,
        /// The connecting (source) node.
        node: NodeId,
    },
    /// "Send me a non-master copy of `block`"; answered by a
    /// [`WireMsg::BlockReply`] echoing `req_id`.
    BlockRequest {
        /// Correlation id, unique per connection manager.
        req_id: u64,
        /// The wanted block.
        block: BlockId,
    },
    /// Answer to a [`WireMsg::BlockRequest`]: the bytes, or `None` if the
    /// responder no longer holds the block (the §3 in-flight race).
    BlockReply {
        /// Correlation id of the request being answered.
        req_id: u64,
        /// The block bytes, if still held.
        data: Option<Vec<u8>>,
    },
    /// An evicted master forwarded here (second chance).
    Forward {
        /// The forwarded block.
        block: BlockId,
        /// Its content.
        data: Vec<u8>,
        /// Block dropped at the destination to make room, if any.
        displace: Option<BlockId>,
    },
    /// A write elsewhere invalidated the destination's copy of `block`.
    Invalidate {
        /// The written block.
        block: BlockId,
    },
    /// Ack request: answered with [`WireMsg::BarrierAck`] once every earlier
    /// frame on this connection has been processed by the service thread.
    Barrier {
        /// Correlation id.
        req_id: u64,
    },
    /// Answer to a [`WireMsg::Barrier`].
    BarrierAck {
        /// Correlation id of the barrier being acked.
        req_id: u64,
    },
    /// Heartbeat probe: answered with [`WireMsg::Pong`] once the
    /// destination's service thread dequeues it — the answer itself is the
    /// proof of liveness.
    Ping {
        /// Correlation id.
        req_id: u64,
    },
    /// Answer to a [`WireMsg::Ping`].
    Pong {
        /// Correlation id of the ping being answered.
        req_id: u64,
    },
    /// A coherence write at the source invalidated the destination's copy
    /// of `block` (fire-and-forget, like [`WireMsg::Invalidate`]).
    WriteInvalidate {
        /// The written block.
        block: BlockId,
        /// Monotonic cluster-wide write version of the triggering write.
        version: u64,
    },
}

/// Why a payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the message did.
    Truncated,
    /// The first byte is not a known message tag.
    UnknownTag(u8),
    /// An `Option` presence byte was neither 0 nor 1.
    BadPresence(u8),
    /// An embedded length field disagrees with the payload size.
    BadLength,
    /// Bytes remained after a complete message was decoded.
    TrailingBytes,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "payload truncated"),
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::BadPresence(b) => write!(f, "presence byte {b} is not 0/1"),
            DecodeError::BadLength => write!(f, "embedded length exceeds payload"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for DecodeError {}

const TAG_HELLO: u8 = 0;
const TAG_BLOCK_REQUEST: u8 = 1;
const TAG_BLOCK_REPLY: u8 = 2;
const TAG_FORWARD: u8 = 3;
const TAG_INVALIDATE: u8 = 4;
const TAG_BARRIER: u8 = 5;
const TAG_BARRIER_ACK: u8 = 6;
const TAG_PING: u8 = 7;
const TAG_PONG: u8 = 8;
const TAG_WRITE_INVALIDATE: u8 = 9;

fn put_block(out: &mut Vec<u8>, block: BlockId) {
    out.extend_from_slice(&block.file.0.to_le_bytes());
    out.extend_from_slice(&block.index.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out.extend_from_slice(data);
}

/// Encode `msg` into `out` (payload only, no length prefix). `out` is
/// cleared first so a buffer can be reused across frames.
pub fn encode(msg: &WireMsg, out: &mut Vec<u8>) {
    out.clear();
    match msg {
        WireMsg::Hello { version, node } => {
            out.push(TAG_HELLO);
            out.push(*version);
            out.extend_from_slice(&node.0.to_le_bytes());
        }
        WireMsg::BlockRequest { req_id, block } => {
            out.push(TAG_BLOCK_REQUEST);
            out.extend_from_slice(&req_id.to_le_bytes());
            put_block(out, *block);
        }
        WireMsg::BlockReply { req_id, data } => {
            out.push(TAG_BLOCK_REPLY);
            out.extend_from_slice(&req_id.to_le_bytes());
            match data {
                None => out.push(0),
                Some(d) => {
                    out.push(1);
                    put_bytes(out, d);
                }
            }
        }
        WireMsg::Forward {
            block,
            data,
            displace,
        } => {
            out.push(TAG_FORWARD);
            put_block(out, *block);
            match displace {
                None => out.push(0),
                Some(d) => {
                    out.push(1);
                    put_block(out, *d);
                }
            }
            put_bytes(out, data);
        }
        WireMsg::Invalidate { block } => {
            out.push(TAG_INVALIDATE);
            put_block(out, *block);
        }
        WireMsg::Barrier { req_id } => {
            out.push(TAG_BARRIER);
            out.extend_from_slice(&req_id.to_le_bytes());
        }
        WireMsg::BarrierAck { req_id } => {
            out.push(TAG_BARRIER_ACK);
            out.extend_from_slice(&req_id.to_le_bytes());
        }
        WireMsg::Ping { req_id } => {
            out.push(TAG_PING);
            out.extend_from_slice(&req_id.to_le_bytes());
        }
        WireMsg::Pong { req_id } => {
            out.push(TAG_PONG);
            out.extend_from_slice(&req_id.to_le_bytes());
        }
        WireMsg::WriteInvalidate { block, version } => {
            out.push(TAG_WRITE_INVALIDATE);
            put_block(out, *block);
            out.extend_from_slice(&version.to_le_bytes());
        }
    }
    debug_assert!(out.len() <= MAX_FRAME as usize, "frame exceeds MAX_FRAME");
}

/// A cursor over a payload being decoded.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn block(&mut self) -> Result<BlockId, DecodeError> {
        let file = FileId(self.u32()?);
        let index = self.u32()?;
        Ok(BlockId::new(file, index))
    }

    fn presence(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::BadPresence(b)),
        }
    }

    fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.u32()? as usize;
        // The embedded length can never legitimately exceed the payload
        // that carries it; checking before `take` keeps the error precise.
        if len > self.buf.len() - self.pos {
            return Err(DecodeError::BadLength);
        }
        Ok(self.take(len)?.to_vec())
    }
}

/// Decode one payload produced by [`encode`]. The whole buffer must be
/// exactly one message.
pub fn decode(payload: &[u8]) -> Result<WireMsg, DecodeError> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let msg = match c.u8()? {
        TAG_HELLO => WireMsg::Hello {
            version: c.u8()?,
            node: NodeId(c.u16()?),
        },
        TAG_BLOCK_REQUEST => WireMsg::BlockRequest {
            req_id: c.u64()?,
            block: c.block()?,
        },
        TAG_BLOCK_REPLY => {
            let req_id = c.u64()?;
            let data = if c.presence()? {
                Some(c.bytes()?)
            } else {
                None
            };
            WireMsg::BlockReply { req_id, data }
        }
        TAG_FORWARD => {
            let block = c.block()?;
            let displace = if c.presence()? {
                Some(c.block()?)
            } else {
                None
            };
            let data = c.bytes()?;
            WireMsg::Forward {
                block,
                data,
                displace,
            }
        }
        TAG_INVALIDATE => WireMsg::Invalidate { block: c.block()? },
        TAG_BARRIER => WireMsg::Barrier { req_id: c.u64()? },
        TAG_BARRIER_ACK => WireMsg::BarrierAck { req_id: c.u64()? },
        TAG_PING => WireMsg::Ping { req_id: c.u64()? },
        TAG_PONG => WireMsg::Pong { req_id: c.u64()? },
        TAG_WRITE_INVALIDATE => WireMsg::WriteInvalidate {
            block: c.block()?,
            version: c.u64()?,
        },
        t => return Err(DecodeError::UnknownTag(t)),
    };
    if c.pos != payload.len() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(msg)
}

/// Write `msg` as one length-prefixed frame and flush it. Returns the
/// total bytes put on the wire (length prefix included) so callers can
/// account traffic without re-encoding.
pub fn write_frame(w: &mut impl Write, msg: &WireMsg) -> io::Result<usize> {
    let mut payload = Vec::new();
    encode(msg, &mut payload);
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    // One write call per frame: frames from concurrent writers must not
    // interleave mid-frame (the TCP layer serializes writers per link, but
    // a single syscall keeps the invariant obvious and cheap).
    w.write_all(&frame)?;
    w.flush()?;
    Ok(frame.len())
}

/// Read one length-prefixed frame. `Ok(None)` on clean EOF at a frame
/// boundary; mid-frame EOF, an oversized length prefix, and any
/// [`DecodeError`] surface as `io::ErrorKind::InvalidData` /
/// `UnexpectedEof` errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<WireMsg>> {
    Ok(read_frame_counted(r)?.map(|(msg, _)| msg))
}

/// [`read_frame`], but also reporting how many bytes the frame occupied on
/// the wire (length prefix included) — the read-side counterpart of
/// [`write_frame`]'s return value.
pub fn read_frame_counted(r: &mut impl Read) -> io::Result<Option<(WireMsg, u64)>> {
    let mut len_buf = [0u8; 4];
    // Distinguish "connection ended between frames" (fine) from "ended in
    // the middle of one" (corruption).
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            r.read_exact(&mut len_buf)?;
        }
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    decode(&payload)
        .map(|msg| Some((msg, 4 + len as u64)))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(f: u32, i: u32) -> BlockId {
        BlockId::new(FileId(f), i)
    }

    fn roundtrip(msg: WireMsg) {
        let mut buf = Vec::new();
        encode(&msg, &mut buf);
        assert_eq!(decode(&buf), Ok(msg));
    }

    #[test]
    fn every_variant_round_trips() {
        roundtrip(WireMsg::Hello {
            version: WIRE_VERSION,
            node: NodeId(7),
        });
        roundtrip(WireMsg::BlockRequest {
            req_id: u64::MAX,
            block: b(3, 9),
        });
        roundtrip(WireMsg::BlockReply {
            req_id: 0,
            data: None,
        });
        roundtrip(WireMsg::BlockReply {
            req_id: 1,
            data: Some(vec![0xAB; 8192]),
        });
        roundtrip(WireMsg::Forward {
            block: b(1, 2),
            data: vec![],
            displace: None,
        });
        roundtrip(WireMsg::Forward {
            block: b(u32::MAX, u32::MAX),
            data: vec![1, 2, 3],
            displace: Some(b(4, 5)),
        });
        roundtrip(WireMsg::Invalidate { block: b(0, 0) });
        roundtrip(WireMsg::Barrier { req_id: 42 });
        roundtrip(WireMsg::BarrierAck { req_id: 42 });
        roundtrip(WireMsg::Ping { req_id: 43 });
        roundtrip(WireMsg::Pong { req_id: 43 });
        roundtrip(WireMsg::WriteInvalidate {
            block: b(6, 7),
            version: u64::MAX,
        });
    }

    #[test]
    fn every_truncation_is_rejected() {
        let msgs = [
            WireMsg::Hello {
                version: 1,
                node: NodeId(1),
            },
            WireMsg::BlockRequest {
                req_id: 5,
                block: b(1, 2),
            },
            WireMsg::BlockReply {
                req_id: 5,
                data: Some(vec![9; 17]),
            },
            WireMsg::Forward {
                block: b(1, 2),
                data: vec![7; 33],
                displace: Some(b(3, 4)),
            },
            WireMsg::Invalidate { block: b(1, 2) },
            WireMsg::Barrier { req_id: 1 },
            WireMsg::Ping { req_id: 1 },
            WireMsg::Pong { req_id: 1 },
            WireMsg::WriteInvalidate {
                block: b(1, 2),
                version: 3,
            },
        ];
        let mut buf = Vec::new();
        for msg in &msgs {
            encode(msg, &mut buf);
            for cut in 0..buf.len() {
                assert!(
                    decode(&buf[..cut]).is_err(),
                    "truncation to {cut} of {msg:?} must fail"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut buf = Vec::new();
        encode(&WireMsg::Barrier { req_id: 3 }, &mut buf);
        buf.push(0);
        assert_eq!(decode(&buf), Err(DecodeError::TrailingBytes));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert_eq!(decode(&[200]), Err(DecodeError::UnknownTag(200)));
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_presence_byte_is_rejected() {
        let mut buf = Vec::new();
        encode(
            &WireMsg::BlockReply {
                req_id: 1,
                data: None,
            },
            &mut buf,
        );
        *buf.last_mut().unwrap() = 2;
        assert_eq!(decode(&buf), Err(DecodeError::BadPresence(2)));
    }

    #[test]
    fn lying_length_field_is_rejected() {
        let mut buf = Vec::new();
        encode(
            &WireMsg::BlockReply {
                req_id: 1,
                data: Some(vec![1, 2, 3]),
            },
            &mut buf,
        );
        // Inflate the embedded data length beyond the payload.
        let len_at = buf.len() - 3 - 4;
        buf[len_at..len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&buf), Err(DecodeError::BadLength));
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let msgs = vec![
            WireMsg::Hello {
                version: WIRE_VERSION,
                node: NodeId(2),
            },
            WireMsg::Forward {
                block: b(8, 1),
                data: vec![5; 100],
                displace: None,
            },
            WireMsg::BarrierAck { req_id: 77 },
        ];
        let mut stream = Vec::new();
        for m in &msgs {
            write_frame(&mut stream, m).unwrap();
        }
        let mut r = stream.as_slice();
        for m in &msgs {
            assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(m));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        stream.extend_from_slice(&[0; 16]);
        let err = read_frame(&mut stream.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn mid_frame_eof_is_an_error_not_none() {
        let mut stream = Vec::new();
        write_frame(&mut stream, &WireMsg::Barrier { req_id: 9 }).unwrap();
        stream.truncate(stream.len() - 2);
        let mut r = stream.as_slice();
        assert!(read_frame(&mut r).is_err());
    }
}
