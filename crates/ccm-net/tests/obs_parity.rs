//! Cross-backend observability parity: a cluster over the in-process
//! channel LAN and one over the TCP LAN must expose the same middleware
//! and chaos metric families, with `chaos_stats()` and the registry
//! snapshot agreeing on both. The TCP backend additionally exposes
//! `ccm_net_*` wire series — and those must balance: every frame counted
//! out by a writer is counted in by the matching reader once the data
//! plane is quiescent.

use ccm_core::{BlockId, FileId, NodeId, ReplacementPolicy, BLOCK_SIZE};
use ccm_net::TcpLan;
use ccm_obs::{Registry, Snapshot};
use ccm_rt::{Catalog, Middleware, RtConfig, SyntheticStore};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

const FILES: usize = 48;
const CAPACITY: usize = 16;

fn cfg(registry: &Registry) -> RtConfig {
    RtConfig {
        nodes: 2,
        capacity_blocks: CAPACITY,
        policy: ReplacementPolicy::MasterPreserving,
        fetch_timeout: Duration::from_secs(2),
        faults: None,
        obs: Some(registry.clone()),
        ..RtConfig::default()
    }
}

/// Prime one node, then read the same set from the other: exercises the
/// local, remote, and disk classes plus evictions on both backends.
fn workload(mw: &Middleware) {
    for f in 0..FILES {
        let b = BlockId::new(FileId(f as u32), 0);
        mw.handle(NodeId(0)).read_block(b);
    }
    for f in 0..FILES {
        let b = BlockId::new(FileId(f as u32), 0);
        mw.handle(NodeId(1)).read_block(b);
    }
    mw.quiesce();
}

fn families(snapshot: &Snapshot) -> BTreeSet<String> {
    snapshot.metrics.iter().map(|m| m.name.clone()).collect()
}

fn run_channel() -> (Snapshot, u64) {
    let catalog = Catalog::new(vec![BLOCK_SIZE; FILES]);
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 7));
    let registry = Registry::new();
    let mw = Middleware::start(cfg(&registry), catalog, store);
    workload(&mw);
    let snap = mw.obs_snapshot();
    let dropped = mw.chaos_stats().dropped;
    mw.shutdown();
    (snap, dropped)
}

fn run_tcp() -> (Snapshot, u64) {
    let catalog = Catalog::new(vec![BLOCK_SIZE; FILES]);
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 7));
    let registry = Registry::new();
    let lan = Arc::new(TcpLan::loopback_obs(2, &registry).expect("bind loopback"));
    let mw = Middleware::start_on(cfg(&registry), catalog, store, lan);
    workload(&mw);
    let snap = mw.obs_snapshot();
    let dropped = mw.chaos_stats().dropped;
    mw.shutdown();
    (snap, dropped)
}

#[test]
fn rt_and_chaos_families_match_across_backends() {
    let (ch, ch_dropped) = run_channel();
    let (tcp, tcp_dropped) = run_tcp();

    let middleware_families = |s: &Snapshot| -> BTreeSet<String> {
        families(s)
            .into_iter()
            .filter(|n| n.starts_with("ccm_rt_") || n.starts_with("ccm_chaos_"))
            .collect()
    };
    assert_eq!(
        middleware_families(&ch),
        middleware_families(&tcp),
        "middleware + chaos families must not depend on the transport"
    );

    // chaos_stats() works uniformly on both backends and agrees with the
    // registry's view (no faults configured, so both report zero drops).
    assert_eq!(ch_dropped, 0);
    assert_eq!(tcp_dropped, 0);
    assert_eq!(ch.counter_sum("ccm_chaos_dropped_total"), 0);
    assert_eq!(tcp.counter_sum("ccm_chaos_dropped_total"), 0);

    // Both backends ran the identical deterministic workload, so the
    // protocol-level counters agree exactly, not just structurally.
    for family in [
        "ccm_rt_reads_total",
        "ccm_rt_evictions_total",
        "ccm_rt_store_fallbacks_total",
    ] {
        assert_eq!(
            ch.counter_sum(family),
            tcp.counter_sum(family),
            "{family} must agree across backends"
        );
    }

    // Wire series exist only where there is a wire.
    let tcp_families = families(&tcp);
    for family in [
        "ccm_net_frames_out_total",
        "ccm_net_bytes_out_total",
        "ccm_net_frames_in_total",
        "ccm_net_bytes_in_total",
        "ccm_net_dials_total",
        "ccm_net_degrades_total",
    ] {
        assert!(
            tcp_families.contains(family),
            "TCP backend missing {family}"
        );
    }
    assert!(
        !families(&ch).iter().any(|n| n.starts_with("ccm_net_")),
        "channel backend must expose no wire series"
    );
}

#[test]
fn wire_counters_balance_once_quiescent() {
    let (tcp, _) = run_tcp();
    // Readers count a frame in before delivering it, and quiesce barriers
    // every connection, so out and in totals must agree exactly.
    let frames_out = tcp.counter_sum("ccm_net_frames_out_total");
    let frames_in = tcp.counter_sum("ccm_net_frames_in_total");
    assert!(frames_out > 0, "workload must cross the wire");
    assert_eq!(frames_out, frames_in, "every frame written must be read");
    assert_eq!(
        tcp.counter_sum("ccm_net_bytes_out_total"),
        tcp.counter_sum("ccm_net_bytes_in_total"),
        "byte accounting must balance too"
    );
    // Nothing may be left pending after quiesce + shutdown.
    let pending: i64 = tcp
        .metrics
        .iter()
        .filter(|m| m.name == "ccm_net_pending_replies")
        .map(|m| match m.value {
            ccm_obs::Value::Gauge(v) => v,
            _ => panic!("pending_replies must be a gauge"),
        })
        .sum();
    assert_eq!(pending, 0, "pending-reply depth must drain to zero");
}
