//! Socket-mode integration tests: the cooperative caching runtime over
//! [`TcpLan`] must behave exactly like it does over the in-process channel
//! LAN, and peer links must survive a node crash/restart cycle.
//!
//! The acceptance oracle is strict: driving the *same* deterministic trace
//! workload through a channel-LAN cluster and a TCP cluster must produce
//! bit-identical bytes for every read and identical protocol statistics.
//! The workload and the digest-folding driver are `ccm-testkit`'s
//! [`acceptance_workload`] and [`drive`] — one copy, both backends.

use ccm_core::{BlockId, FileId, NodeId, ReplacementPolicy};
use ccm_net::TcpLan;
use ccm_rt::store::read_file_direct;
use ccm_rt::{Catalog, Middleware, RtConfig, SyntheticStore, Transport};
use ccm_testkit::{acceptance_workload, drive, start_cluster, Backend};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn cluster_config(nodes: usize) -> RtConfig {
    RtConfig {
        nodes,
        capacity_blocks: 24,
        policy: ReplacementPolicy::MasterPreserving,
        fetch_timeout: Duration::from_secs(2),
        faults: None,
        ..RtConfig::default()
    }
}

/// Acceptance: a 4-node cluster serving the trace workload over TCP
/// delivers bit-identical bytes — and identical protocol statistics — to
/// the same cluster over the channel LAN.
#[test]
fn tcp_cluster_matches_channel_lan_bit_for_bit() {
    let nodes = 4;
    let ops = 250;
    let wl = acceptance_workload();
    let catalog = Catalog::new(wl.sizes().to_vec());
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 7));

    let chan_cluster = start_cluster(
        Backend::Channel,
        cluster_config(nodes),
        catalog.clone(),
        store.clone(),
    );
    let chan = drive(&chan_cluster, &*store, &catalog, &wl, nodes, ops, 11);
    chan_cluster.shutdown();

    let tcp_cluster = start_cluster(
        Backend::Tcp,
        cluster_config(nodes),
        catalog.clone(),
        store.clone(),
    );
    let lan = tcp_cluster.lan.clone().expect("tcp backend keeps its lan");
    let tcp = drive(&tcp_cluster, &*store, &catalog, &wl, nodes, ops, 11);
    tcp_cluster.shutdown();

    assert_eq!(
        chan.digest, tcp.digest,
        "byte digests diverge between backends"
    );
    assert_eq!(
        chan.stats, tcp.stats,
        "protocol statistics diverge between backends"
    );
    assert_eq!(
        chan.fallbacks, tcp.fallbacks,
        "fallback counts diverge between backends"
    );
    // The workload must actually exercise the wire: remote fetches happened
    // and the TCP backend moved real frames.
    assert!(
        tcp.stats.remote_hits > 0,
        "no remote hits: wire never exercised"
    );
    let ns = lan.net_stats();
    assert!(ns.connects > 0, "no TCP connections were established");
    assert!(
        ns.frames_sent > ns.connects,
        "no data frames beyond the hellos"
    );
}

/// Satellite (d): crash a node mid-stream, restart it, and the peer links
/// re-establish — remote fetches through the revived node succeed with
/// exact bytes and no extra disk fallbacks.
#[test]
fn peer_link_reestablishes_after_crash_and_restart() {
    let nodes = 4;
    let catalog = Catalog::new(vec![40_000; 12]);
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 13));
    let lan = Arc::new(TcpLan::loopback(nodes).expect("bind loopback listeners"));
    let mw = Middleware::start_on(
        cluster_config(nodes),
        catalog.clone(),
        store.clone(),
        lan.clone(),
    );
    let victim = NodeId(1);
    let reader = NodeId(0);

    // Warm the wire: victim masters file 2, reader fetches it remotely.
    let f = FileId(2);
    mw.handle(victim).read_file(f);
    let got = mw.handle(reader).read_file(f);
    assert_eq!(got, read_file_direct(&*store, &catalog, f));
    assert!(mw.stats().remote_hits > 0, "warm-up never hit the wire");
    let before = lan.net_stats();
    assert!(before.connects > 0);

    // Crash mid-stream: in-flight connections to and from the victim die.
    mw.crash_node(victim);
    assert!(!mw.is_alive(victim));
    mw.check_invariants();
    mw.restart_node(victim);
    assert!(mw.is_alive(victim));
    mw.check_invariants();
    let after_restart = lan.net_stats();
    assert!(
        after_restart.teardowns > before.teardowns,
        "restart must sever the victim's connections"
    );

    // The revived node masters a fresh file; a remote fetch of it forces a
    // new dial over the previously severed link.
    let g = FileId(7);
    mw.handle(victim).read_file(g);
    let fallbacks_before = mw.store_fallbacks();
    let hits_before = mw.stats().remote_hits;
    let got = mw.handle(reader).read_file(g);
    assert_eq!(
        got,
        read_file_direct(&*store, &catalog, g),
        "post-restart remote read corrupted"
    );
    assert!(
        mw.stats().remote_hits > hits_before,
        "post-restart read did not travel the re-established link"
    );
    assert_eq!(
        mw.store_fallbacks(),
        fallbacks_before,
        "re-established link must serve without disk fallback"
    );
    assert!(
        lan.net_stats().connects > after_restart.connects,
        "no re-dial happened"
    );

    // And the reverse direction: the revived node fetches from a peer.
    let h = FileId(9);
    mw.handle(reader).read_file(h);
    let got = mw.handle(victim).read_file(h);
    assert_eq!(got, read_file_direct(&*store, &catalog, h));
    mw.quiesce();
    mw.check_invariants();
    mw.shutdown();
}

/// Raw transport behavior, no middleware: a live service answers block
/// requests and barriers; a dead inbox (crashed incarnation) makes the
/// requester observe a disconnect well before its deadline — the degrade-
/// to-disk path is fast, not a hang.
#[test]
fn dead_incarnation_degrades_fast_instead_of_hanging() {
    let lan = Arc::new(TcpLan::loopback(2).expect("bind loopback listeners"));
    let _rx0 = lan.reconnect(NodeId(0));
    let rx1 = lan.reconnect(NodeId(1));
    let block = BlockId::new(FileId(3), 1);

    // A minimal node-1 service: answer block requests with a recognizable
    // payload until the inbox dies.
    let service = std::thread::spawn(move || {
        while let Ok(msg) = rx1.recv() {
            match msg {
                ccm_rt::PeerMsg::BlockRequest { block, reply } => {
                    let _ = reply.send(Some(vec![block.index as u8; 16]));
                }
                ccm_rt::PeerMsg::Barrier { reply } => {
                    let _ = reply.send(());
                }
                ccm_rt::PeerMsg::Shutdown => break,
                _ => {}
            }
        }
    });

    let got = lan.fetch_block(NodeId(0), NodeId(1), block, Duration::from_secs(2));
    assert_eq!(got, Some(vec![1u8; 16]), "live fetch over TCP failed");
    assert!(lan.barrier(NodeId(1), Duration::from_secs(2)));

    // Kill the incarnation: the service drains its inbox and exits.
    assert!(lan.send(NodeId(1), NodeId(1), ccm_rt::PeerMsg::Shutdown));
    service.join().expect("service thread");

    // The demux can no longer deliver, so the connection dies and the
    // requester sees a disconnect (None) — quickly, not at the deadline.
    let start = Instant::now();
    let got = lan.fetch_block(NodeId(0), NodeId(1), block, Duration::from_secs(5));
    assert_eq!(got, None, "dead incarnation must miss");
    assert!(
        start.elapsed() < Duration::from_secs(4),
        "dead-peer fetch should disconnect early, took {:?}",
        start.elapsed()
    );

    // Immediately after the teardown the link is in backoff: sends fail
    // fast (the caller's disk-fallback path), they do not stall.
    let start = Instant::now();
    let got = lan.fetch_block(NodeId(0), NodeId(1), block, Duration::from_secs(5));
    assert_eq!(got, None);
    assert!(
        start.elapsed() < Duration::from_secs(4),
        "backoff send should fail fast, took {:?}",
        start.elapsed()
    );
    assert!(lan.net_stats().teardowns >= 1);
}

/// Heartbeat frames on the wire: a cross-node ping travels as a real
/// `Ping`/`Pong` frame pair (src != dst, so no local short-circuit), and
/// once the peer's service thread is gone the ping fails instead of
/// hanging — the membership monitor's miss signal.
#[test]
fn wire_ping_round_trips_and_detects_death() {
    let lan = Arc::new(TcpLan::loopback(2).expect("bind loopback listeners"));
    let _rx0 = lan.reconnect(NodeId(0));
    let rx1 = lan.reconnect(NodeId(1));
    let service = std::thread::spawn(move || {
        while let Ok(msg) = rx1.recv() {
            match msg {
                ccm_rt::PeerMsg::Ping { reply } => {
                    let _ = reply.send(());
                }
                ccm_rt::PeerMsg::Shutdown => break,
                _ => {}
            }
        }
    });

    let before = lan.net_stats();
    assert!(
        lan.ping(NodeId(0), NodeId(1), Duration::from_secs(2)),
        "cross-node ping must round-trip over the wire"
    );
    let after = lan.net_stats();
    assert!(
        after.frames_sent > before.frames_sent,
        "ping never produced a wire frame"
    );

    assert!(lan.send(NodeId(1), NodeId(1), ccm_rt::PeerMsg::Shutdown));
    service.join().expect("service thread");

    let start = Instant::now();
    assert!(
        !lan.ping(NodeId(0), NodeId(1), Duration::from_secs(5)),
        "ping to a dead incarnation must miss"
    );
    assert!(
        start.elapsed() < Duration::from_secs(4),
        "dead-peer ping should disconnect early, took {:?}",
        start.elapsed()
    );
}
