//! Property tests for the wire codec: every [`WireMsg`] survives an
//! encode/decode round trip bit-exactly, and the decoder rejects — without
//! panicking or over-reading — every truncation of a valid frame and
//! arbitrary garbage.

use ccm_core::{BlockId, FileId, NodeId};
use ccm_net::{decode, encode, DecodeError, WireMsg};
use proptest::prelude::*;

/// A strategy over full-range block ids.
fn block() -> impl Strategy<Value = BlockId> {
    (any::<u32>(), any::<u32>()).prop_map(|(f, i)| BlockId::new(FileId(f), i))
}

/// A strategy over payload bytes (empty through a few KB; the codec is
/// length-driven, so size coverage matters more than content).
fn payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..4096)
}

/// A strategy covering every message variant.
fn wire_msg() -> impl Strategy<Value = WireMsg> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(version, node)| WireMsg::Hello {
            version,
            node: NodeId(node),
        }),
        (any::<u64>(), block()).prop_map(|(req_id, block)| WireMsg::BlockRequest { req_id, block }),
        (any::<u64>(), prop::option::of(payload()))
            .prop_map(|(req_id, data)| WireMsg::BlockReply { req_id, data }),
        (block(), payload(), prop::option::of(block())).prop_map(|(block, data, displace)| {
            WireMsg::Forward {
                block,
                data,
                displace,
            }
        }),
        block().prop_map(|block| WireMsg::Invalidate { block }),
        (block(), any::<u64>())
            .prop_map(|(block, version)| WireMsg::WriteInvalidate { block, version }),
        any::<u64>().prop_map(|req_id| WireMsg::Barrier { req_id }),
        any::<u64>().prop_map(|req_id| WireMsg::BarrierAck { req_id }),
        any::<u64>().prop_map(|req_id| WireMsg::Ping { req_id }),
        any::<u64>().prop_map(|req_id| WireMsg::Pong { req_id }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Encode → decode is the identity for every variant.
    #[test]
    fn roundtrip_is_identity(msg in wire_msg()) {
        let mut buf = Vec::new();
        encode(&msg, &mut buf);
        prop_assert_eq!(decode(&buf), Ok(msg));
    }

    /// Every strict prefix of a valid payload is rejected as truncated —
    /// never accepted, never panicking, never reading past the slice.
    #[test]
    fn every_truncation_is_rejected(msg in wire_msg()) {
        let mut buf = Vec::new();
        encode(&msg, &mut buf);
        for cut in 0..buf.len() {
            let got = decode(&buf[..cut]);
            prop_assert!(
                got.is_err(),
                "prefix of {} of {} bytes decoded to {:?}",
                cut,
                buf.len(),
                got
            );
        }
    }

    /// Appending garbage to a valid payload is rejected: a frame must be
    /// consumed exactly.
    #[test]
    fn trailing_garbage_is_rejected(msg in wire_msg(), junk in 1u8..=255) {
        let mut buf = Vec::new();
        encode(&msg, &mut buf);
        buf.push(junk);
        prop_assert_eq!(decode(&buf), Err(DecodeError::TrailingBytes));
    }

    /// Arbitrary byte soup never panics the decoder; whatever it returns is
    /// a total function of the input.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let first = decode(&bytes);
        prop_assert_eq!(decode(&bytes), first);
    }

    /// A corrupted tag byte outside the known range is an UnknownTag error.
    #[test]
    fn unknown_tags_are_rejected(msg in wire_msg(), tag in 10u8..=255) {
        let mut buf = Vec::new();
        encode(&msg, &mut buf);
        buf[0] = tag;
        prop_assert_eq!(decode(&buf), Err(DecodeError::UnknownTag(tag)));
    }
}

/// Extreme values survive the round trip (belt to the property's suspenders:
/// these exact corners always run, regardless of generator luck).
#[test]
fn corner_values_roundtrip() {
    let corners = [
        WireMsg::Hello {
            version: u8::MAX,
            node: NodeId(u16::MAX),
        },
        WireMsg::BlockRequest {
            req_id: u64::MAX,
            block: BlockId::new(FileId(u32::MAX), u32::MAX),
        },
        WireMsg::BlockReply {
            req_id: 0,
            data: Some(Vec::new()),
        },
        WireMsg::BlockReply {
            req_id: u64::MAX,
            data: None,
        },
        WireMsg::Forward {
            block: BlockId::new(FileId(0), 0),
            data: vec![0xAB; 8192],
            displace: Some(BlockId::new(FileId(u32::MAX), 0)),
        },
    ];
    for msg in corners {
        let mut buf = Vec::new();
        encode(&msg, &mut buf);
        assert_eq!(decode(&buf), Ok(msg));
    }
}
