//! The PR-1 torture harness, re-run over real sockets: [`ChaosLan`] wraps
//! [`TcpLan`] instead of the channel LAN, so every injected drop,
//! duplication, reorder, and crash/restart exercises the TCP connection
//! manager — lazy dials, pending-reply teardown, reconnect after restart —
//! under the same two oracles:
//!
//! * **Integrity** — every byte delivered under any fault schedule equals
//!   the backing-store ground truth, and directory invariants hold after
//!   every repair.
//! * **Replayability** — with the data plane quiesced after each op, the
//!   same seed produces bit-identical protocol and chaos statistics even
//!   though the transport underneath is a real socket stack.
//!
//! Faults are injected *before* the socket (sender-side), so a dropped
//! request still degrades to an instant disconnect — never a TCP-level
//! stall — and the fault schedule is byte-for-byte the one the channel
//! backend sees.
//!
//! The driver is `ccm-testkit`'s [`run_torture`] with [`Backend::Tcp`] —
//! the same code path the channel-mode `tests/chaos.rs` runs, including
//! the repair-counter reconciliation and traced integrity reads the two
//! harnesses used to diverge on. The fetch timeout is wider than the
//! channel harness's: a real loopback round trip plus scheduling noise
//! must never be mistaken for a lost message.

use ccm_core::{FileId, NodeId, ReplacementPolicy};
use ccm_net::TcpLan;
use ccm_rt::store::read_file_direct;
use ccm_rt::{DiskFaults, FaultPlan, Middleware, RtConfig};
use ccm_testkit::{fixture, run_torture, Backend};
use simcore::Rng;
use std::sync::Arc;
use std::time::Duration;

const BACKEND: Backend = Backend::Tcp;

/// The integrity oracle over sockets: drops, duplication, reordering, and a
/// crash/restart per seed — every byte must still be exact, and the crashed
/// node's TCP links must have been severed and re-established.
#[test]
fn every_seed_delivers_exact_bytes_over_tcp_under_torture() {
    for seed in 0..4 {
        let out = run_torture(BACKEND, seed, 4, 120, false, DiskFaults::NONE);
        assert!(out.chaos.dropped > 0, "seed {seed}: drops must fire");
        assert_eq!(out.crashes, 1, "seed {seed}: plan schedules one crash");
        assert_eq!(out.restarts, 1, "seed {seed}: crashed node must rejoin");
        assert!(out.stats.node_repairs >= 1);
        assert!(
            out.stats.store_fallbacks > 0,
            "seed {seed}: lost messages must surface as store fallbacks"
        );
    }
}

/// The replayability oracle over sockets: the same seed produces
/// bit-identical statistics across runs even though every peer byte now
/// crosses a real TCP connection with its own timing.
#[test]
fn same_seed_is_bit_identical_across_tcp_runs() {
    for seed in [3, 11] {
        let a = run_torture(BACKEND, seed, 4, 100, true, DiskFaults::NONE);
        let b = run_torture(BACKEND, seed, 4, 100, true, DiskFaults::NONE);
        assert_eq!(a, b, "seed {seed}: socket reruns must be bit-identical");
        assert!(a.chaos.dropped > 0);
        assert_eq!(a.crashes, 1);
    }
}

/// Disk faults layered onto the socket torture: every node's disk service
/// injects slow reads and I/O errors while the TCP links drop and reorder
/// traffic, yet every byte delivered over the wire stays exact, and the
/// quiesced replay reproduces the disk-fallback count bit-for-bit.
#[test]
fn disk_faults_over_tcp_stay_exact_and_replayable() {
    let disk = DiskFaults {
        slow_prob: 0.05,
        slow: Duration::from_millis(2),
        error_prob: 0.25,
    };
    let out = run_torture(BACKEND, 17, 4, 80, false, disk);
    assert!(out.chaos.dropped > 0, "link faults must fire");
    assert!(
        out.disk_fallbacks > 0,
        "injected disk errors must surface as store retries"
    );

    let a = run_torture(BACKEND, 21, 4, 80, true, disk);
    let b = run_torture(BACKEND, 21, 4, 80, true, disk);
    assert_eq!(a, b, "disk-faulted socket reruns must be bit-identical");
    assert!(a.disk_fallbacks > 0);
}

/// Concurrent stress over sockets: reader threads hammer never-crashed
/// nodes while the plan's victim crashes and rejoins, severing and
/// re-dialing its connections mid-traffic. Integrity and invariants only.
/// Release mode: `cargo test --release -- --ignored`.
#[test]
#[ignore = "stress test; run with --release -- --ignored"]
fn concurrent_readers_survive_crashes_over_lossy_tcp() {
    // CI shards the seeds across a matrix via CHAOS_SEED_SHARD=<k> (mod 3);
    // run all of them locally when the variable is unset.
    let shard: Option<u64> = std::env::var("CHAOS_SEED_SHARD")
        .ok()
        .and_then(|v| v.parse().ok());
    for seed in (0..6u64).filter(|s| shard.is_none_or(|k| s % 3 == k)) {
        let (catalog, store) = fixture(seed);
        let n_files = catalog.num_files() as u64;
        let nodes = 4;
        let plan = FaultPlan::torture(seed, nodes, 300);
        let victims: Vec<NodeId> = plan.crashes.iter().map(|c| c.node).collect();
        let schedule = plan.crashes.clone();
        let lan = Arc::new(TcpLan::loopback(nodes).expect("bind loopback listeners"));
        let mw = Arc::new(Middleware::start_on(
            RtConfig {
                nodes,
                capacity_blocks: 24,
                policy: ReplacementPolicy::MasterPreserving,
                fetch_timeout: BACKEND.torture_fetch_timeout(),
                faults: Some(plan),
                ..RtConfig::default()
            },
            catalog.clone(),
            store.clone(),
            lan.clone(),
        ));

        let readers: Vec<_> = (0..nodes)
            .map(|i| NodeId(i as u16))
            .filter(|n| !victims.contains(n))
            .map(|node| {
                let mw = mw.clone();
                let store = store.clone();
                let catalog = catalog.clone();
                std::thread::spawn(move || {
                    let mut rng = Rng::new(seed).substream(100 + node.index() as u64);
                    for op in 0..150 {
                        let file = FileId(rng.next_below(n_files) as u32);
                        let got = mw.handle(node).read_file(file);
                        let want = read_file_direct(&*store, &catalog, file);
                        assert_eq!(
                            got, want,
                            "seed {seed} node {node:?} op {op}: corrupted bytes over TCP"
                        );
                    }
                })
            })
            .collect();

        for ev in &schedule {
            std::thread::sleep(Duration::from_millis(30));
            mw.crash_node(ev.node);
            mw.check_invariants();
            if ev.restart_at_op.is_some() {
                std::thread::sleep(Duration::from_millis(30));
                mw.restart_node(ev.node);
                mw.check_invariants();
            }
        }
        for r in readers {
            r.join().expect("reader thread failed the integrity oracle");
        }
        mw.quiesce();
        mw.check_invariants();
        // After the dust settles every file reads exact through every node,
        // including the revived victim over its re-established links.
        for i in 0..nodes {
            let node = NodeId(i as u16);
            assert!(mw.is_alive(node));
            for f in (0..n_files).step_by(7) {
                let file = FileId(f as u32);
                let got = mw.handle(node).read_file(file);
                let want = read_file_direct(&*store, &catalog, file);
                assert_eq!(got, want, "seed {seed}: post-run read corrupted");
            }
        }
        mw.check_invariants();
        // Teardowns only register for links that were established before
        // the crash, which some schedules never dial — but the run as a
        // whole must have moved real frames.
        assert!(
            lan.net_stats().connects > 0,
            "seed {seed}: wire never exercised"
        );
    }
}
