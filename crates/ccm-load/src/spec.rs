//! The load-run specification.

use ccm_core::ReplacementPolicy;
use ccm_traces::{Preset, Workload};

/// Everything that determines a load run, gathered so a report can echo
/// it and a rerun can reproduce it.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Which calibrated trace preset to replay.
    pub preset: Preset,
    /// Restrict the preset to its `n` hottest files (see
    /// [`Workload::head`]); `None` replays the full catalog. Live-cluster
    /// tests use a few hundred files so the synthetic store stays cheap
    /// while the Zipf shape (and the policy ordering it drives) survives.
    pub head_files: Option<usize>,
    /// Cluster size.
    pub nodes: usize,
    /// Closed-loop clients per node (ignored in deterministic mode, which
    /// drives one request at a time).
    pub clients_per_node: usize,
    /// Per-node cache capacity in blocks — the memory axis of the paper's
    /// figures.
    pub capacity_blocks: usize,
    /// Replacement policy under test.
    pub policy: ReplacementPolicy,
    /// Requests replayed to warm the caches before measurement.
    pub warmup_requests: usize,
    /// Requests replayed inside the measurement window.
    pub measure_requests: usize,
    /// Seed for the recorded request stream and the synthetic store.
    pub seed: u64,
    /// Single-threaded in-order replay: protocol statistics become a pure
    /// function of the stream (and match [`simulate`](crate::simulate)
    /// exactly); wall-clock figures lose meaning but stay reported.
    pub deterministic: bool,
    /// Run the cluster behind per-node HTTP front ends and scrape one
    /// node's `/metrics` mid-run, recording whether the load and runtime
    /// metric families were live ([`LoadReport::metrics_scrape`]).
    pub serve_metrics: bool,
}

impl LoadSpec {
    /// A small default cell for `preset`: 4 nodes, 8 clients each, a
    /// 300-file head, cache scaled so cooperation matters.
    pub fn new(preset: Preset) -> LoadSpec {
        LoadSpec {
            preset,
            head_files: Some(300),
            nodes: 4,
            clients_per_node: 8,
            capacity_blocks: 64,
            policy: ReplacementPolicy::MasterPreserving,
            warmup_requests: 600,
            measure_requests: 1_200,
            seed: 0x10AD,
            deterministic: false,
            serve_metrics: false,
        }
    }

    /// The workload this spec replays (head truncation applied).
    ///
    /// # Panics
    /// Panics if `head_files` is zero or exceeds the preset's catalog.
    pub fn workload(&self) -> Workload {
        let full = self.preset.workload();
        match self.head_files {
            Some(n) => full.head(n),
            None => full,
        }
    }

    /// Warm-up plus measurement requests.
    pub fn total_requests(&self) -> usize {
        self.warmup_requests + self.measure_requests
    }

    /// Total client threads in the concurrent mode.
    pub fn total_clients(&self) -> usize {
        self.nodes * self.clients_per_node
    }

    /// The policy's figure label (`master-preserving`, `n-chance`,
    /// `global-lru`).
    pub fn policy_label(&self) -> &'static str {
        self.policy.label()
    }
}
