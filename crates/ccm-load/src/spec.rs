//! The load-run specification.

use ccm_core::ReplacementPolicy;
use ccm_rt::WriteConfig;
use ccm_traces::{scan_heavy, FileId, Preset, ScanConfig, ScanSource, Workload, WriteMix};
use simcore::Rng;
use std::sync::Arc;

/// Everything that determines a load run, gathered so a report can echo
/// it and a rerun can reproduce it.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Which calibrated trace preset to replay.
    pub preset: Preset,
    /// Restrict the preset to its `n` hottest files (see
    /// [`Workload::head`]); `None` replays the full catalog. Live-cluster
    /// tests use a few hundred files so the synthetic store stays cheap
    /// while the Zipf shape (and the policy ordering it drives) survives.
    pub head_files: Option<usize>,
    /// Cluster size.
    pub nodes: usize,
    /// Closed-loop clients per node (ignored in deterministic mode, which
    /// drives one request at a time).
    pub clients_per_node: usize,
    /// Per-node cache capacity in blocks — the memory axis of the paper's
    /// figures.
    pub capacity_blocks: usize,
    /// Replacement policy under test.
    pub policy: ReplacementPolicy,
    /// Requests replayed to warm the caches before measurement.
    pub warmup_requests: usize,
    /// Requests replayed inside the measurement window.
    pub measure_requests: usize,
    /// Seed for the recorded request stream and the synthetic store.
    pub seed: u64,
    /// Single-threaded in-order replay: protocol statistics become a pure
    /// function of the stream (and match [`simulate`](crate::simulate)
    /// exactly); wall-clock figures lose meaning but stay reported.
    pub deterministic: bool,
    /// Run the cluster behind per-node HTTP front ends and scrape one
    /// node's `/metrics` mid-run, recording whether the load and runtime
    /// metric families were live ([`LoadReport::metrics_scrape`]).
    pub serve_metrics: bool,
    /// Fraction of operations that rewrite their file's first block
    /// instead of reading (0.0 = the read-only replay every earlier spec
    /// ran). Write runs require `deterministic`, replace the synthetic
    /// store with a writable overlay, and verify every subsequent read
    /// against a shadow copy of the acked payloads.
    pub write_ratio: f64,
    /// Write-coherence configuration forwarded to the runtime (mode and,
    /// for write-back, the dirty budget / flush interval).
    pub write: WriteConfig,
    /// Ghost-LRU admission capacity (`None` = admission off, the previous
    /// behavior; `Some(n)` remembers `n` recently evicted/rejected blocks).
    pub admission_ghosts: Option<usize>,
    /// Append a one-touch scan tail to the preset and replace every
    /// `period`-th request with the next sequential scan file — the
    /// workload admission control is measured against.
    pub scan: Option<ScanConfig>,
}

impl LoadSpec {
    /// A small default cell for `preset`: 4 nodes, 8 clients each, a
    /// 300-file head, cache scaled so cooperation matters.
    pub fn new(preset: Preset) -> LoadSpec {
        LoadSpec {
            preset,
            head_files: Some(300),
            nodes: 4,
            clients_per_node: 8,
            capacity_blocks: 64,
            policy: ReplacementPolicy::MasterPreserving,
            warmup_requests: 600,
            measure_requests: 1_200,
            seed: 0x10AD,
            deterministic: false,
            serve_metrics: false,
            write_ratio: 0.0,
            write: WriteConfig::default(),
            admission_ghosts: None,
            scan: None,
        }
    }

    /// The workload this spec replays: head truncation applied, then the
    /// scan tail (if any) appended with zero popularity weight.
    ///
    /// # Panics
    /// Panics if `head_files` is zero or exceeds the preset's catalog.
    pub fn workload(&self) -> Workload {
        let full = self.preset.workload();
        let base = match self.head_files {
            Some(n) => full.head(n),
            None => full,
        };
        match self.scan {
            Some(sc) => scan_heavy(&base, sc),
            None => base,
        }
    }

    /// The recorded request stream this spec replays — a pure function of
    /// the spec, shared by the live driver and the protocol simulator.
    /// Without a scan tail this is exactly `workload().record(..)`; with
    /// one, a [`ScanSource`] replaces every `period`-th request with the
    /// next sequential scan file.
    pub fn record_stream(&self) -> Vec<FileId> {
        let wl = Arc::new(self.workload());
        let rng = Rng::new(self.seed).substream(1);
        match self.scan {
            None => {
                let mut rng = rng;
                wl.record(self.total_requests(), &mut rng)
            }
            Some(sc) => {
                let body = wl.num_files() - sc.scan_files;
                let mut src = ScanSource::new(wl.requests(rng), body, sc.scan_files, sc.period);
                (0..self.total_requests())
                    .map(|_| ccm_traces::RequestSource::next_request(&mut src))
                    .collect()
            }
        }
    }

    /// The deterministic write marking for this spec's operation stream,
    /// or `None` for a read-only replay. The mix seed is derived from the
    /// stream seed so one spec field controls both.
    pub fn write_mix(&self) -> Option<WriteMix> {
        (self.write_ratio > 0.0).then(|| WriteMix::new(self.seed ^ 0x5752_4954, self.write_ratio))
    }

    /// Warm-up plus measurement requests.
    pub fn total_requests(&self) -> usize {
        self.warmup_requests + self.measure_requests
    }

    /// Total client threads in the concurrent mode.
    pub fn total_clients(&self) -> usize {
        self.nodes * self.clients_per_node
    }

    /// The policy's figure label (`master-preserving`, `n-chance`,
    /// `global-lru`).
    pub fn policy_label(&self) -> &'static str {
        self.policy.label()
    }
}
