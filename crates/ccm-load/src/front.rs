//! The front-door drive mode: replay a recorded request stream *through
//! the HTTP front tier* against either backend — the live form of the
//! paper's CCM-vs-L2S comparison.
//!
//! Structure mirrors [`run`](crate::run): closed-loop clients striped over
//! a recorded stream, a warm-up/measurement split, byte verification of
//! every response against the backing store, an order-insensitive payload
//! digest, and a reconciliation pass — here against the front tier's own
//! `ccm_front_*` counters and the backend's block-weighted hit
//! accounting. The differences are the tier in between (real HTTP
//! connections, a dispatch policy picking the serving node) and the
//! backend seam (CCM middleware or the live L2S baseline).

use std::sync::Arc;
use std::time::Instant;

use ccm_core::block::blocks_of_file;
use ccm_core::{FileId, ReplacementPolicy};
use ccm_front::client::FrontClient;
use ccm_front::{CcmBackend, FrontBackend, FrontTier, L2sBackend, PolicyKind};
use ccm_obs::{LatencySummary, Registry, Snapshot, Stopwatch};
use ccm_rt::store::read_file_direct;
use ccm_rt::{Catalog, Middleware, RtConfig, SyntheticStore, Transport};
use ccm_traces::{FileId as TraceFileId, Preset};
use simcore::Rng;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(FNV_PRIME);
    }
}

/// Which cache architecture serves behind the front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// The cooperative caching middleware with the given replacement
    /// policy (paper default: master-preserving).
    Ccm(ReplacementPolicy),
    /// The live L2S baseline: whole-file per-node LRU with
    /// de-replication, no cooperative peer fetch. Capacity parity with
    /// CCM: each node gets `capacity_blocks × 8 KB` of cache.
    L2s,
}

impl BackendChoice {
    /// Report label (`ccm` / `l2s`).
    pub fn label(self) -> &'static str {
        match self {
            BackendChoice::Ccm(_) => "ccm",
            BackendChoice::L2s => "l2s",
        }
    }
}

/// Everything that determines a front-door run.
#[derive(Debug, Clone)]
pub struct FrontSpec {
    /// Which calibrated trace preset to replay.
    pub preset: Preset,
    /// Restrict the preset to its `n` hottest files (`None` = full
    /// catalog).
    pub head_files: Option<usize>,
    /// Cluster size (backend nodes and front endpoints).
    pub nodes: usize,
    /// Closed-loop clients per endpoint (ignored in deterministic mode).
    pub clients_per_node: usize,
    /// Per-node cache capacity in 8 KB blocks (both backends; L2S gets
    /// the byte equivalent).
    pub capacity_blocks: usize,
    /// The front tier's dispatch policy.
    pub dispatch: PolicyKind,
    /// What serves behind the dispatch seam.
    pub backend: BackendChoice,
    /// Requests replayed to warm the caches before measurement.
    pub warmup_requests: usize,
    /// Requests replayed inside the measurement window.
    pub measure_requests: usize,
    /// Seed for the recorded request stream and the synthetic store.
    pub seed: u64,
    /// `Some(k)`: every `k`-th request of the stream (by global index)
    /// asks for only the file's first block (`Range: bytes=0-8191`)
    /// instead of the whole file — the partial-content traffic the block
    /// granularity argument is about. The CCM backend reads only the
    /// covering block; L2S must fault the entire file (whole-file
    /// granularity). Zero-length files are always fetched whole.
    pub range_every: Option<usize>,
    /// Single-threaded in-order replay over keep-alive connections: the
    /// report's deterministic projection becomes a pure function of the
    /// spec, identical across reruns and across channel/TCP transports.
    pub deterministic: bool,
}

impl FrontSpec {
    /// A small default cell: 4 nodes, 8 clients each, 300-file head.
    pub fn new(preset: Preset, dispatch: PolicyKind, backend: BackendChoice) -> FrontSpec {
        FrontSpec {
            preset,
            head_files: Some(300),
            nodes: 4,
            clients_per_node: 8,
            capacity_blocks: 64,
            dispatch,
            backend,
            warmup_requests: 600,
            measure_requests: 1_200,
            seed: 0x10AD,
            range_every: None,
            deterministic: false,
        }
    }

    /// Warm-up plus measurement requests.
    pub fn total_requests(&self) -> usize {
        self.warmup_requests + self.measure_requests
    }

    /// Total client threads in the concurrent mode.
    pub fn total_clients(&self) -> usize {
        self.nodes * self.clients_per_node
    }
}

/// One front-door run's report. Like [`LoadReport`](crate::LoadReport),
/// split into a deterministic projection (spec echo + seed-determined
/// observations; bit-identical across reruns *and across transports* for
/// a deterministic spec) and wall-clock extras.
#[derive(Debug, Clone)]
pub struct FrontReport {
    /// Backend label (`ccm` / `l2s`).
    pub backend: String,
    /// Transport under the CCM backend (`channel` / `tcp`); `-` for L2S.
    /// Deliberately *outside* the deterministic projection.
    pub transport: String,
    /// Workload name, head truncation included.
    pub preset: String,
    /// Dispatch policy label.
    pub dispatch: String,
    /// Replacement policy label (CCM) or `whole-file-lru` (L2S).
    pub cache_policy: String,
    /// Cluster size.
    pub nodes: usize,
    /// Closed-loop clients per endpoint.
    pub clients_per_node: usize,
    /// Per-node capacity in blocks.
    pub capacity_blocks: usize,
    /// Warm-up requests.
    pub warmup_requests: usize,
    /// Measurement-window requests.
    pub measure_requests: usize,
    /// Stream/store seed.
    pub seed: u64,
    /// Whether the run was the single-threaded deterministic replay.
    pub deterministic: bool,

    /// Ranged-request cadence echo (`spec.range_every`).
    pub range_every: Option<usize>,

    /// Requests completed in the window (all verified `200`s/`206`s).
    pub requests: u64,
    /// Blocks the window's responses covered (driver count — what the
    /// block-granular CCM backend reads).
    pub blocks: u64,
    /// Blocks a whole-file-granularity server faults for the same window
    /// (what the L2S backend reads); equals `blocks` without ranges.
    pub faulted: u64,
    /// Payload bytes delivered in the window.
    pub bytes: u64,
    /// Order-insensitive FNV-1a digest of the window's payload.
    pub digest: u64,
    /// Block-weighted cache hits over the window (backend accounting).
    pub hits: u64,
    /// Block-weighted cache accesses over the window.
    pub accesses: u64,
    /// Requests dispatched to a node other than their arrival endpoint.
    pub handoffs: u64,
    /// Driver counts, backend hit accounting, and the front tier's
    /// dispatch/response counters all agreed.
    pub reconciled: bool,

    /// Measurement-window wall time, seconds.
    pub elapsed_s: f64,
    /// Requests per second over the window.
    pub rps: f64,
    /// Payload megabytes per second over the window.
    pub mb_per_s: f64,
    /// Per-request latency over the window (client-observed, HTTP
    /// round-trip included).
    pub latency: LatencySummary,
}

impl FrontReport {
    /// Block-weighted cluster-memory hit ratio over the window.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    fn deterministic_fields(&self) -> String {
        format!(
            concat!(
                "\"backend\": \"{}\", \"preset\": \"{}\", \"dispatch\": \"{}\", ",
                "\"cache_policy\": \"{}\", \"nodes\": {}, \"clients_per_node\": {}, ",
                "\"capacity_blocks\": {}, \"warmup_requests\": {}, \"measure_requests\": {}, ",
                "\"seed\": {}, \"range_every\": {}, \"deterministic\": {}, ",
                "\"requests\": {}, \"blocks\": {}, \"faulted_blocks\": {}, ",
                "\"bytes\": {}, \"digest\": \"{:#018x}\", ",
                "\"hits\": {}, \"accesses\": {}, \"hit_ratio\": {:.6}, ",
                "\"handoffs\": {}, \"reconciled\": {}"
            ),
            self.backend,
            self.preset,
            self.dispatch,
            self.cache_policy,
            self.nodes,
            self.clients_per_node,
            self.capacity_blocks,
            self.warmup_requests,
            self.measure_requests,
            self.seed,
            match self.range_every {
                Some(k) => k.to_string(),
                None => "null".to_string(),
            },
            self.deterministic,
            self.requests,
            self.blocks,
            self.faulted,
            self.bytes,
            self.digest,
            self.hits,
            self.accesses,
            self.hit_ratio(),
            self.handoffs,
            self.reconciled,
        )
    }

    /// The seed-determined projection: bit-identical across reruns of the
    /// same deterministic spec, on either transport (the transport label
    /// is kept out on purpose).
    pub fn deterministic_json(&self) -> String {
        format!("{{ {} }}", self.deterministic_fields())
    }

    /// The full cell: deterministic section plus transport and timing.
    pub fn to_json(&self) -> String {
        format!(
            "{{ {}, \"transport\": \"{}\", \"elapsed_s\": {:.3}, \"rps\": {:.1}, \
             \"mb_per_s\": {:.2}, \"latency_ns\": {} }}",
            self.deterministic_fields(),
            self.transport,
            self.elapsed_s,
            self.rps,
            self.mb_per_s,
            self.latency.to_json(),
        )
    }

    /// One human line for progress output.
    pub fn summary(&self) -> String {
        format!(
            "{:<4} {:<8} {:<18} {:<16} cap {:>4}: {:>7.1} req/s, hit {:>5.1}%, \
             handoffs {:>5}, p50 {:>8} ns",
            self.backend,
            self.transport,
            self.preset,
            self.dispatch,
            self.capacity_blocks,
            self.rps,
            100.0 * self.hit_ratio(),
            self.handoffs,
            self.latency.p50_ns,
        )
    }
}

/// What one phase delivered (XOR-folded per-client digests, as in the
/// bare-middleware driver, so concurrent and deterministic modes agree).
#[derive(Clone, Copy)]
struct PhaseOut {
    requests: u64,
    /// Blocks the responses actually covered (what CCM reads).
    blocks: u64,
    /// Blocks a whole-file-granularity server must fault for the same
    /// responses (what L2S reads) — equals `blocks` when no ranges.
    faulted: u64,
    bytes: u64,
    digest: u64,
}

/// One closed-loop step over HTTP: GET the file (or its first block, for
/// ranged requests) through the front door, verify every byte, fold the
/// payload into the digest.
fn serve_one(
    conn: &mut FrontClient,
    store: &SyntheticStore,
    catalog: &Catalog,
    req: TraceFileId,
    ranged: bool,
    latency: &ccm_obs::Histogram,
    out: &mut PhaseOut,
) {
    let file = FileId(req.0);
    let size = catalog.size_of(file);
    let path = format!("/file/{}", req.0);
    let want = read_file_direct(store, catalog, file);
    let ranged = ranged && size > 0;
    let sw = Stopwatch::start();
    let r = if ranged {
        conn.get_with(&path, &[("Range", "bytes=0-8191")])
            .expect("front request failed")
    } else {
        conn.get(&path).expect("front request failed")
    };
    sw.stop(latency);
    let (expect_status, want): (u16, &[u8]) = if ranged {
        let end = (ccm_core::BLOCK_SIZE as usize).min(want.len());
        (206, &want[..end])
    } else {
        (200, &want)
    };
    assert_eq!(
        r.status, expect_status,
        "front returned {} for {path} (ranged: {ranged})",
        r.status
    );
    assert!(
        r.body == want,
        "corrupt serve through the front door: file {} returned {} bytes (want {})",
        req.0,
        r.body.len(),
        want.len()
    );
    out.requests += 1;
    out.blocks += if ranged {
        1
    } else {
        blocks_of_file(size) as u64
    };
    out.faulted += blocks_of_file(size) as u64;
    out.bytes += want.len() as u64;
    fnv1a(&mut out.digest, &r.body);
}

/// Drive one phase through the front door. Request `i` of the stream
/// arrives at endpoint `i % nodes` (round-robin DNS), exactly the
/// bare-middleware driver's node mapping — what happens *after* arrival
/// is the dispatch policy's business.
#[allow(clippy::too_many_arguments)]
fn drive_phase(
    front: &FrontTier,
    store: &Arc<SyntheticStore>,
    catalog: &Catalog,
    reqs: &[TraceFileId],
    phase_start: usize,
    nodes: usize,
    clients: usize,
    range_every: Option<usize>,
    deterministic: bool,
    latency: &ccm_obs::Histogram,
) -> PhaseOut {
    let addrs = front.addrs();
    let empty = PhaseOut {
        requests: 0,
        blocks: 0,
        faulted: 0,
        bytes: 0,
        digest: 0,
    };
    // Ranged requests are picked by *global* stream index, so the mix is
    // identical no matter how the phase is split across clients.
    let is_ranged = |j: usize| range_every.is_some_and(|k| (phase_start + j).is_multiple_of(k));
    let fold = |parts: Vec<PhaseOut>| {
        parts.into_iter().fold(empty, |mut acc, p| {
            acc.requests += p.requests;
            acc.blocks += p.blocks;
            acc.faulted += p.faulted;
            acc.bytes += p.bytes;
            acc.digest ^= p.digest;
            acc
        })
    };

    if deterministic {
        // In-order replay over per-endpoint keep-alive connections,
        // folded into the same per-client digest slots the concurrent
        // mode uses.
        let mut conns: Vec<FrontClient> = addrs
            .iter()
            .map(|&a| FrontClient::connect(a).expect("connect front endpoint"))
            .collect();
        let mut parts = vec![
            PhaseOut {
                digest: FNV_OFFSET,
                ..empty
            };
            clients
        ];
        for (j, req) in reqs.iter().enumerate() {
            let endpoint = (phase_start + j) % nodes;
            serve_one(
                &mut conns[endpoint],
                store,
                catalog,
                *req,
                is_ranged(j),
                latency,
                &mut parts[j % clients],
            );
        }
        fold(parts)
    } else {
        let part = |k: usize| {
            let endpoint = (phase_start + k) % nodes;
            let mut conn = FrontClient::connect(addrs[endpoint]).expect("connect front endpoint");
            let mut out = PhaseOut {
                digest: FNV_OFFSET,
                ..empty
            };
            for j in (k..reqs.len()).step_by(clients) {
                serve_one(
                    &mut conn,
                    store,
                    catalog,
                    reqs[j],
                    is_ranged(j),
                    latency,
                    &mut out,
                );
            }
            out
        };
        std::thread::scope(|s| {
            let joins: Vec<_> = (0..clients).map(|k| s.spawn(move || part(k))).collect();
            let parts = joins
                .into_iter()
                .map(|j| j.join().expect("front load client panicked"))
                .collect();
            fold(parts)
        })
    }
}

fn counter_delta(warm: &Snapshot, done: &Snapshot, name: &str) -> u64 {
    done.counter_sum(name) - warm.counter_sum(name)
}

/// Run `spec` with the CCM backend on the in-process channel LAN (or the
/// L2S backend, which has no transport at all).
pub fn run_front(spec: &FrontSpec) -> FrontReport {
    run_front_inner(spec, "channel", None)
}

/// Run `spec` with the CCM backend over a caller-built transport (e.g.
/// `ccm-net`'s `TcpLan`), labelling the report's `transport` field.
///
/// # Panics
/// Panics if `spec.backend` is [`BackendChoice::L2s`] — there is no
/// cluster transport underneath the L2S baseline.
pub fn run_front_on(spec: &FrontSpec, transport: Arc<dyn Transport>, label: &str) -> FrontReport {
    assert!(
        matches!(spec.backend, BackendChoice::Ccm(_)),
        "the L2S backend has no cluster transport"
    );
    run_front_inner(spec, label, Some(transport))
}

fn run_front_inner(
    spec: &FrontSpec,
    transport_label: &str,
    transport: Option<Arc<dyn Transport>>,
) -> FrontReport {
    assert!(spec.nodes > 0, "empty cluster");
    assert!(spec.clients_per_node > 0, "no clients");
    assert!(spec.measure_requests > 0, "empty measurement window");

    let wl = {
        let full = spec.preset.workload();
        match spec.head_files {
            Some(n) => full.head(n),
            None => full,
        }
    };
    let stream = wl.record(spec.total_requests(), &mut Rng::new(spec.seed).substream(1));
    let catalog = Catalog::new(wl.sizes().to_vec());
    let store = Arc::new(SyntheticStore::new(catalog.clone(), spec.seed));
    let registry = Registry::new();

    // Build the backend behind the dispatch seam.
    let (backend, middleware, cache_policy): (
        Arc<dyn FrontBackend>,
        Option<Arc<Middleware>>,
        &'static str,
    ) = match spec.backend {
        BackendChoice::Ccm(policy) => {
            let cfg = RtConfig {
                nodes: spec.nodes,
                capacity_blocks: spec.capacity_blocks,
                policy,
                // Same rationale as `run.rs`: deterministic replay must
                // never see a timeout-induced store fallback just because
                // a loaded machine stalled a service thread.
                fetch_timeout: if spec.deterministic {
                    std::time::Duration::from_secs(60)
                } else {
                    std::time::Duration::from_secs(2)
                },
                obs: Some(registry.clone()),
                ..RtConfig::default()
            };
            let mw = Arc::new(match transport {
                None => Middleware::start(cfg, catalog.clone(), store.clone()),
                Some(t) => Middleware::start_on(cfg, catalog.clone(), store.clone(), t),
            });
            (
                Arc::new(CcmBackend::new(mw.clone())),
                Some(mw),
                policy.label(),
            )
        }
        BackendChoice::L2s => {
            let capacity_bytes = spec.capacity_blocks as u64 * ccm_core::BLOCK_SIZE;
            (
                Arc::new(L2sBackend::new(
                    catalog.clone(),
                    store.clone(),
                    spec.nodes,
                    capacity_bytes,
                )),
                None,
                "whole-file-lru",
            )
        }
    };
    let dispatch = spec.dispatch.build(&registry, spec.nodes);
    let front = FrontTier::start(backend.clone(), dispatch, registry.clone());
    let clients = spec.total_clients();

    let phase_latency = |phase: &str| {
        registry.histogram(
            "ccm_load_request_latency_ns",
            "End-to-end request latency as the load generator sees it",
            &[("phase", phase)],
        )
    };

    // Warm-up.
    let (warm_reqs, measure_reqs) = stream.split_at(spec.warmup_requests);
    drive_phase(
        &front,
        &store,
        &catalog,
        warm_reqs,
        0,
        spec.nodes,
        clients,
        spec.range_every,
        spec.deterministic,
        &phase_latency("warmup"),
    );
    backend.quiesce();
    let warm_hits = backend.hit_stats();
    let warm_snap = registry.snapshot();

    // Measurement window.
    let latency = phase_latency("measure");
    let started = Instant::now();
    let out = drive_phase(
        &front,
        &store,
        &catalog,
        measure_reqs,
        spec.warmup_requests,
        spec.nodes,
        clients,
        spec.range_every,
        spec.deterministic,
        &latency,
    );
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    backend.quiesce();
    let done_hits = backend.hit_stats();
    let done_snap = registry.snapshot();

    let hits = done_hits.hits - warm_hits.hits;
    let accesses = done_hits.accesses - warm_hits.accesses;
    let dispatched = counter_delta(&warm_snap, &done_snap, "ccm_front_dispatch_total");
    let ok_responses = ["2xx", "206"]
        .iter()
        .map(|class| {
            done_snap.counter_sum_where("ccm_front_responses_total", "status", class)
                - warm_snap.counter_sum_where("ccm_front_responses_total", "status", class)
        })
        .sum::<u64>();
    let handoffs = counter_delta(&warm_snap, &done_snap, "ccm_front_handoffs_total");

    // Reconcile: the front tier must have dispatched and answered exactly
    // the window's requests, and the backend's block-weighted access count
    // must match the driver's own block arithmetic — covering blocks for
    // the block-granular CCM backend, whole-file blocks for L2S. (Under
    // concurrent CCM load a raced peer fetch can fall through to the
    // store — accesses then still match, the hit side just lands in the
    // disk class.)
    let expected_accesses = match spec.backend {
        BackendChoice::Ccm(_) => out.blocks,
        BackendChoice::L2s => out.faulted,
    };
    let reconciled =
        dispatched == out.requests && ok_responses == out.requests && accesses == expected_accesses;
    if spec.deterministic {
        assert!(
            reconciled,
            "deterministic front replay failed reconciliation: driver {} requests / {} covering \
             blocks / {} faulted blocks, front dispatched {dispatched}, answered {ok_responses}, \
             backend accesses {accesses}",
            out.requests, out.blocks, out.faulted,
        );
    }

    let latency = LatencySummary::of(&latency.snapshot());
    let report = FrontReport {
        backend: backend.name().to_string(),
        transport: match spec.backend {
            BackendChoice::Ccm(_) => transport_label.to_string(),
            BackendChoice::L2s => "-".to_string(),
        },
        preset: wl.name().to_string(),
        dispatch: spec.dispatch.name().to_string(),
        cache_policy: cache_policy.to_string(),
        nodes: spec.nodes,
        clients_per_node: spec.clients_per_node,
        capacity_blocks: spec.capacity_blocks,
        warmup_requests: spec.warmup_requests,
        measure_requests: spec.measure_requests,
        seed: spec.seed,
        range_every: spec.range_every,
        deterministic: spec.deterministic,
        requests: out.requests,
        blocks: out.blocks,
        faulted: out.faulted,
        bytes: out.bytes,
        digest: out.digest,
        hits,
        accesses,
        handoffs,
        reconciled,
        elapsed_s: elapsed,
        rps: measure_reqs.len() as f64 / elapsed,
        mb_per_s: out.bytes as f64 / (1024.0 * 1024.0) / elapsed,
        latency,
    };

    front.shutdown();
    drop(backend);
    if let Some(mw) = middleware {
        match Arc::try_unwrap(mw) {
            Ok(mw) => mw.shutdown(),
            Err(_) => { /* a handle outlived us; Drop will clean up */ }
        }
    }
    report
}
