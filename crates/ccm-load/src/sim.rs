//! The pure-protocol reference: the same recorded stream replayed through
//! a bare [`ClusterCache`], no threads, no data plane.
//!
//! The threaded runtime's caching decisions are exactly the protocol's
//! (see `tests/runtime_vs_protocol.rs`), so for a deterministic drive the
//! live cluster's measurement-window statistics must equal this replay's
//! bit for bit — the conformance suite's oracle.

use crate::spec::LoadSpec;
use ccm_core::block::blocks_of_file;
use ccm_core::{BlockId, CacheConfig, CacheStats, ClusterCache, FileId, NodeId};

/// What the reference replay observed over the measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimReport {
    /// Protocol counters, delta over the measurement window.
    pub measured: CacheStats,
    /// Block accesses inside the measurement window.
    pub blocks: u64,
    /// Payload bytes requested inside the measurement window.
    pub bytes: u64,
}

impl SimReport {
    /// Cluster-memory hit ratio (local + remote) over the window.
    pub fn total_hit_ratio(&self) -> f64 {
        self.measured.total_hit_rate()
    }
}

/// Replay `spec`'s recorded request stream through the bare protocol:
/// request `i` issues from node `i % nodes`, touching every block of the
/// file, exactly as the live driver does. Returns the measurement-window
/// delta.
pub fn simulate(spec: &LoadSpec) -> SimReport {
    assert!(
        spec.write_ratio == 0.0,
        "the protocol simulator models read-only replay"
    );
    let wl = spec.workload();
    let requests = spec.record_stream();
    let mut cache = ClusterCache::new(CacheConfig::paper(
        spec.nodes,
        spec.capacity_blocks,
        spec.policy,
    ));

    let mut warm = CacheStats::new();
    let (mut blocks, mut bytes) = (0u64, 0u64);
    for (i, req) in requests.iter().enumerate() {
        if i == spec.warmup_requests {
            warm = cache.stats();
        }
        let node = NodeId((i % spec.nodes) as u16);
        let file = FileId(req.0);
        let size = wl.size_of(*req);
        for b in 0..blocks_of_file(size) {
            cache.access(node, BlockId::new(file, b));
        }
        if i >= spec.warmup_requests {
            blocks += blocks_of_file(size) as u64;
            bytes += size;
        }
    }
    cache.check_invariants();
    let measured = cache.stats().delta_since(&warm);
    debug_assert_eq!(measured.accesses(), blocks);
    SimReport {
        measured,
        blocks,
        bytes,
    }
}
