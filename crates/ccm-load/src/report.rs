//! The run report: one JSON cell per `(backend, preset)` run.

use ccm_core::CacheStats;
use ccm_obs::LatencySummary;

/// Everything one load run produced. Split in two:
///
/// * the **deterministic section** ([`LoadReport::deterministic_json`]):
///   the spec echo plus every seed-determined observation — request/block/
///   byte counts, payload digest, protocol counters over the measurement
///   window, reconciliation verdict. For a deterministic run this is
///   bit-identical across reruns of the same seed.
/// * the **timing section** (wall-clock throughput and latency quantiles),
///   appended by [`LoadReport::to_json`] — real time, different every run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Transport label (`channel` / `tcp`).
    pub backend: String,
    /// Workload name, head truncation included (e.g. `calgary-head300`).
    pub preset: String,
    /// Replacement policy label.
    pub policy: String,
    /// Cluster size.
    pub nodes: usize,
    /// Closed-loop clients per node.
    pub clients_per_node: usize,
    /// Per-node cache capacity in blocks.
    pub capacity_blocks: usize,
    /// Warm-up requests replayed before the window.
    pub warmup_requests: usize,
    /// Requests inside the measurement window.
    pub measure_requests: usize,
    /// Stream/store seed.
    pub seed: u64,
    /// Whether the run was the single-threaded deterministic replay.
    pub deterministic: bool,

    /// Block accesses in the window (driver count).
    pub blocks: u64,
    /// Payload bytes delivered in the window.
    pub bytes: u64,
    /// Order-insensitive FNV-1a digest of the window's payload (XOR over
    /// the per-client stream digests).
    pub digest: u64,
    /// Protocol counters, delta over the measurement window.
    pub measured: CacheStats,
    /// Driver counts, protocol counters, and the runtime's
    /// `ccm_rt_reads_total` registry deltas all agreed — plus, for write
    /// runs, driver writes vs. `ccm_rt_writes_total`, and the durability
    /// epilogue (dirty set drained, nothing lost, every acked payload on
    /// the store).
    pub reconciled: bool,
    /// The spec's write fraction (0.0 = read-only replay).
    pub write_ratio: f64,
    /// Coherence mode label (`through` / `back`).
    pub write_mode: String,
    /// Writes the driver issued inside the measurement window.
    pub writes: u64,
    /// Dirty blocks the runtime flushed to the store by run end (0 under
    /// write-through, which persists inline).
    pub flushes: u64,
    /// Acked writes recorded as lost (must be 0 on the graceful path).
    pub lost_writes: u64,
    /// Ghost-LRU admission capacity (`None` = admission off).
    pub admission_ghosts: Option<usize>,
    /// Replica installs the admission filter allowed.
    pub admission_admitted: u64,
    /// Replica installs the admission filter rejected (first touch).
    pub admission_rejected: u64,
    /// Admissions granted because the block was in the ghost list.
    pub admission_ghost_hits: u64,
    /// `Some(ok)` when the run served HTTP and scraped `/metrics` mid-run
    /// (`ok` = the load and runtime families were present); `None` when
    /// the scrape was not requested.
    pub metrics_scrape: Option<bool>,

    /// Measurement-window wall time, seconds.
    pub elapsed_s: f64,
    /// Requests per second over the window.
    pub rps: f64,
    /// Payload megabytes per second over the window.
    pub mb_per_s: f64,
    /// Per-request latency over the window.
    pub latency: LatencySummary,
}

impl LoadReport {
    /// Cluster-memory hit ratio (local + remote) over the window.
    pub fn total_hit_ratio(&self) -> f64 {
        self.measured.total_hit_rate()
    }

    /// The deterministic fields as a comma-terminated JSON fragment.
    fn deterministic_fields(&self) -> String {
        let m = &self.measured;
        format!(
            concat!(
                "\"backend\": \"{}\", \"preset\": \"{}\", \"policy\": \"{}\", ",
                "\"nodes\": {}, \"clients_per_node\": {}, \"capacity_blocks\": {}, ",
                "\"warmup_requests\": {}, \"measure_requests\": {}, \"seed\": {}, ",
                "\"deterministic\": {}, ",
                "\"blocks\": {}, \"bytes\": {}, \"digest\": \"{:#018x}\", ",
                "\"local_hits\": {}, \"remote_hits\": {}, \"disk_reads\": {}, ",
                "\"store_fallbacks\": {}, \"forwards\": {}, ",
                "\"local_hit_ratio\": {:.6}, \"total_hit_ratio\": {:.6}, ",
                "\"write_ratio\": {:.3}, \"write_mode\": \"{}\", \"writes\": {}, ",
                "\"flushes\": {}, \"lost_writes\": {}, ",
                "\"admission_ghosts\": {}, \"admission_admitted\": {}, ",
                "\"admission_rejected\": {}, \"admission_ghost_hits\": {}, ",
                "\"reconciled\": {}"
            ),
            self.backend,
            self.preset,
            self.policy,
            self.nodes,
            self.clients_per_node,
            self.capacity_blocks,
            self.warmup_requests,
            self.measure_requests,
            self.seed,
            self.deterministic,
            self.blocks,
            self.bytes,
            self.digest,
            m.local_hits,
            m.remote_hits,
            m.disk_reads,
            m.store_fallbacks,
            m.forwards,
            m.local_hit_rate(),
            m.total_hit_rate(),
            self.write_ratio,
            self.write_mode,
            self.writes,
            self.flushes,
            self.lost_writes,
            match self.admission_ghosts {
                Some(n) => n.to_string(),
                None => "null".to_string(),
            },
            self.admission_admitted,
            self.admission_rejected,
            self.admission_ghost_hits,
            self.reconciled,
        )
    }

    /// The seed-determined projection of the report: bit-identical across
    /// reruns of the same deterministic spec (no wall-clock fields).
    pub fn deterministic_json(&self) -> String {
        format!("{{ {} }}", self.deterministic_fields())
    }

    /// The full cell: deterministic section plus throughput and latency.
    pub fn to_json(&self) -> String {
        let scrape = match self.metrics_scrape {
            Some(ok) => ok.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{ {}, \"metrics_scrape\": {}, \"elapsed_s\": {:.3}, \"rps\": {:.1}, \
             \"mb_per_s\": {:.2}, \"latency_ns\": {} }}",
            self.deterministic_fields(),
            scrape,
            self.elapsed_s,
            self.rps,
            self.mb_per_s,
            self.latency.to_json(),
        )
    }

    /// One human line for progress output.
    pub fn summary(&self) -> String {
        format!(
            "{:<8} {:<18} {:<17} cap {:>4}: {:>7.1} req/s, {:>6.2} MB/s, \
             p50 {:>8} ns, p99 {:>8} ns, hit {:>5.1}% ({:.1}% local), fallbacks {}",
            self.backend,
            self.preset,
            self.policy,
            self.capacity_blocks,
            self.rps,
            self.mb_per_s,
            self.latency.p50_ns,
            self.latency.p99_ns,
            100.0 * self.measured.total_hit_rate(),
            100.0 * self.measured.local_hit_rate(),
            self.measured.store_fallbacks,
        )
    }
}
