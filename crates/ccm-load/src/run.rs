//! The live driver: replay a recorded request stream against a running
//! cluster with closed-loop clients, verify every byte, and reconcile the
//! report against the runtime's own counters.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use std::collections::HashMap;

use ccm_core::block::{blocks_of_file, BLOCK_SIZE};
use ccm_core::{AdmissionConfig, BlockId, FileId as CoreFileId, NodeId};
use ccm_httpd::HttpCluster;
use ccm_obs::{Counter, Histogram, LatencySummary, Registry, Snapshot, Stopwatch};
use ccm_rt::store::{read_file_direct, MemStore};
use ccm_rt::{BlockStore, Catalog, Middleware, RtConfig, SyntheticStore, Transport, WriteMode};
use ccm_traces::{FileId as TraceFileId, WriteMix};

use crate::report::LoadReport;
use crate::spec::LoadSpec;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(FNV_PRIME);
    }
}

/// The cluster front end a run drives: the bare middleware, or the
/// middleware behind per-node HTTP listeners when the spec asks for a
/// live `/metrics` scrape.
enum Front {
    Bare(Middleware),
    Http(HttpCluster),
}

impl Front {
    fn mw(&self) -> &Middleware {
        match self {
            Front::Bare(mw) => mw,
            Front::Http(c) => c.middleware(),
        }
    }

    fn scrape_addr(&self) -> Option<SocketAddr> {
        match self {
            Front::Bare(_) => None,
            Front::Http(c) => Some(c.addrs()[0]),
        }
    }

    fn shutdown(self) {
        match self {
            Front::Bare(mw) => mw.shutdown(),
            Front::Http(c) => c.shutdown(),
        }
    }
}

/// What one phase (warm-up or measurement) delivered. Digests are XOR
/// folds over the per-client stream digests, so the value is independent
/// of client interleaving — the concurrent and deterministic modes agree.
#[derive(Clone, Copy)]
struct PhaseOut {
    blocks: u64,
    bytes: u64,
    digest: u64,
}

/// One closed-loop step: time the cluster read, verify it against the
/// backing store's ground truth — with the shadow copy of acked writes
/// spliced over it, since under write-back the store lags the cluster —
/// and fold the payload into the digest.
#[allow(clippy::too_many_arguments)]
fn serve_one(
    mw: &Middleware,
    node: NodeId,
    store: &dyn BlockStore,
    catalog: &Catalog,
    req: TraceFileId,
    shadow: &HashMap<BlockId, Vec<u8>>,
    latency: &Histogram,
    requests: &Counter,
    out: &mut PhaseOut,
) {
    let file = CoreFileId(req.0);
    let sw = Stopwatch::start();
    let got = mw.handle(node).read_file(file);
    sw.stop(latency);
    requests.inc();
    let mut want = read_file_direct(store, catalog, file);
    if !shadow.is_empty() {
        for b in 0..blocks_of_file(want.len() as u64) {
            if let Some(p) = shadow.get(&BlockId::new(file, b)) {
                let off = b as usize * BLOCK_SIZE as usize;
                want[off..off + p.len()].copy_from_slice(p);
            }
        }
    }
    assert!(
        got == want,
        "corrupt serve: file {} returned {} bytes (want {})",
        req.0,
        got.len(),
        want.len()
    );
    out.blocks += blocks_of_file(want.len() as u64) as u64;
    out.bytes += want.len() as u64;
    fnv1a(&mut out.digest, &got);
}

/// Drive one phase of the stream. `phase_start` is the global index of
/// `reqs[0]`, so request `i` always lands on node `i % nodes` no matter
/// how the phase is split across clients: client `k` of `K` serves the
/// phase indices `j ≡ k (mod K)`, and because `K` is a multiple of the
/// node count its node `(phase_start + k) % nodes` is fixed — `K / nodes`
/// closed-loop clients per node, exactly the paper's client model.
#[allow(clippy::too_many_arguments)]
fn drive_phase(
    mw: &Middleware,
    store: &Arc<dyn BlockStore>,
    catalog: &Catalog,
    reqs: &[TraceFileId],
    phase_start: usize,
    nodes: usize,
    clients: usize,
    deterministic: bool,
    mix: Option<WriteMix>,
    shadow: &mut HashMap<BlockId, Vec<u8>>,
    latency: &Histogram,
    requests: &Counter,
    scrape: Option<SocketAddr>,
) -> (PhaseOut, Option<bool>, u64) {
    let empty = HashMap::new();
    let part = |k: usize| {
        let node = NodeId(((phase_start + k) % nodes) as u16);
        let mut out = PhaseOut {
            blocks: 0,
            bytes: 0,
            digest: FNV_OFFSET,
        };
        for j in (k..reqs.len()).step_by(clients) {
            serve_one(
                mw, node, &**store, catalog, reqs[j], &empty, latency, requests, &mut out,
            );
        }
        out
    };

    let fold = |parts: Vec<PhaseOut>| {
        parts.into_iter().fold(
            PhaseOut {
                blocks: 0,
                bytes: 0,
                digest: 0,
            },
            |mut acc, p| {
                acc.blocks += p.blocks;
                acc.bytes += p.bytes;
                acc.digest ^= p.digest;
                acc
            },
        )
    };

    if deterministic {
        // In-order replay, but folded into the same per-client digest
        // slots the concurrent mode uses, so digests match across modes.
        let mut parts = vec![
            PhaseOut {
                blocks: 0,
                bytes: 0,
                digest: FNV_OFFSET,
            };
            clients
        ];
        let mut writes = 0u64;
        for (j, req) in reqs.iter().enumerate() {
            let node = NodeId(((phase_start + j) % nodes) as u16);
            let op = (phase_start + j) as u64;
            if mix.is_some_and(|m| m.is_write(op)) {
                // Rewrite the file's first block with a payload that is a
                // pure function of (seed-derived mix, op) — the shadow map
                // is what every later read is verified against.
                let file = CoreFileId(req.0);
                let block = BlockId::new(file, 0);
                let fill = (op as u8) ^ (req.0 as u8) ^ 0x5A;
                let payload = vec![fill; catalog.block_bytes(block) as usize];
                let sw = Stopwatch::start();
                mw.handle(node)
                    .write_block(block, &payload)
                    .expect("writable overlay refused a write");
                sw.stop(latency);
                requests.inc();
                shadow.insert(block, payload);
                writes += 1;
                continue;
            }
            serve_one(
                mw,
                node,
                &**store,
                catalog,
                *req,
                shadow,
                latency,
                requests,
                &mut parts[j % clients],
            );
        }
        let scraped = scrape.map(scrape_ok);
        (fold(parts), scraped, writes)
    } else {
        assert!(mix.is_none(), "write mix requires deterministic mode");
        std::thread::scope(|s| {
            let joins: Vec<_> = (0..clients).map(|k| s.spawn(move || part(k))).collect();
            // Scrape while the clients are in flight: the run report's
            // `metrics_scrape` certifies the exposition is live mid-load.
            let scraped = scrape.map(scrape_ok);
            let parts = joins
                .into_iter()
                .map(|j| j.join().expect("load client panicked"))
                .collect();
            (fold(parts), scraped, 0)
        })
    }
}

/// `GET /metrics` from one node and check that both the driver's and the
/// runtime's counter families are present.
fn scrape_ok(addr: SocketAddr) -> bool {
    match ccm_httpd::client::get(addr, "/metrics") {
        Ok(r) => {
            let body = String::from_utf8_lossy(&r.body);
            r.status == 200
                && body.contains("ccm_load_requests_total")
                && body.contains("ccm_rt_reads_total")
        }
        Err(_) => false,
    }
}

/// Per-class deltas of `ccm_rt_reads_total` between two registry
/// snapshots, in `[local, remote, disk, fallback]` order.
fn class_deltas(warm: &Snapshot, done: &Snapshot) -> [u64; 4] {
    let d = |class: &str| {
        done.counter_sum_where("ccm_rt_reads_total", "class", class)
            - warm.counter_sum_where("ccm_rt_reads_total", "class", class)
    };
    [d("local"), d("remote"), d("disk"), d("fallback")]
}

/// Run `spec` over the in-process channel LAN.
pub fn run(spec: &LoadSpec) -> LoadReport {
    run_inner(spec, "channel", None)
}

/// Run `spec` over a caller-built transport (e.g. `ccm-net`'s `TcpLan`),
/// labelling the report's `backend` field with `backend`.
pub fn run_on(spec: &LoadSpec, transport: Arc<dyn Transport>, backend: &str) -> LoadReport {
    run_inner(spec, backend, Some(transport))
}

fn run_inner(spec: &LoadSpec, backend: &str, transport: Option<Arc<dyn Transport>>) -> LoadReport {
    assert!(spec.nodes > 0, "empty cluster");
    assert!(spec.clients_per_node > 0, "no clients");
    assert!(spec.measure_requests > 0, "empty measurement window");
    let mix = spec.write_mix();
    assert!(
        mix.is_none() || spec.deterministic,
        "write mix requires deterministic mode"
    );

    let wl = spec.workload();
    let stream = spec.record_stream();
    let catalog = Catalog::new(wl.sizes().to_vec());
    // Write runs need a store that accepts writes; read-only runs keep the
    // pure synthetic store (the overlay reads identically, but why pay for
    // its map).
    let store: Arc<dyn BlockStore> = if mix.is_some() {
        Arc::new(MemStore::new(catalog.clone(), spec.seed))
    } else {
        Arc::new(SyntheticStore::new(catalog.clone(), spec.seed))
    };
    let registry = Registry::new();
    let cfg = RtConfig {
        nodes: spec.nodes,
        capacity_blocks: spec.capacity_blocks,
        policy: spec.policy,
        // Deterministic replay asserts that no fetch ever falls back to
        // the store; on a loaded (or single-core) machine OS scheduling
        // can stall a service thread well past the production timeout,
        // so give sequential replay a timeout only a genuine hang hits.
        fetch_timeout: if spec.deterministic {
            Duration::from_secs(60)
        } else {
            Duration::from_secs(2)
        },
        obs: Some(registry.clone()),
        write: spec.write,
        admission: spec.admission_ghosts.map(AdmissionConfig::new),
        ..RtConfig::default()
    };
    let front = match (transport, spec.serve_metrics) {
        (None, false) => Front::Bare(Middleware::start(cfg, catalog.clone(), store.clone())),
        (None, true) => Front::Http(HttpCluster::start(cfg, catalog.clone(), store.clone())),
        (Some(t), false) => {
            Front::Bare(Middleware::start_on(cfg, catalog.clone(), store.clone(), t))
        }
        (Some(t), true) => Front::Http(HttpCluster::start_on(
            cfg,
            catalog.clone(),
            store.clone(),
            t,
        )),
    };
    let mw = front.mw();
    let clients = spec.total_clients();

    let phase_latency = |phase: &str| {
        registry.histogram(
            "ccm_load_request_latency_ns",
            "End-to-end file-read latency as the load generator sees it",
            &[("phase", phase)],
        )
    };
    let phase_requests = |phase: &str| {
        registry.counter(
            "ccm_load_requests_total",
            "Requests the load generator completed",
            &[("phase", phase)],
        )
    };

    // Warm-up: populate the caches, then drop the counters on the floor.
    let mut shadow: HashMap<BlockId, Vec<u8>> = HashMap::new();
    let (warm_reqs, measure_reqs) = stream.split_at(spec.warmup_requests);
    drive_phase(
        mw,
        &store,
        &catalog,
        warm_reqs,
        0,
        spec.nodes,
        clients,
        spec.deterministic,
        mix,
        &mut shadow,
        &phase_latency("warmup"),
        &phase_requests("warmup"),
        None,
    );
    mw.quiesce();
    let warm_stats = mw.stats();
    let warm_snap = mw.obs_snapshot();

    // Measurement window.
    let latency = phase_latency("measure");
    let started = Instant::now();
    let (out, scraped, window_writes) = drive_phase(
        mw,
        &store,
        &catalog,
        measure_reqs,
        spec.warmup_requests,
        spec.nodes,
        clients,
        spec.deterministic,
        mix,
        &mut shadow,
        &latency,
        &phase_requests("measure"),
        front.scrape_addr(),
    );
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    mw.quiesce();
    mw.check_invariants();
    let measured = mw.stats().delta_since(&warm_stats);
    let done_snap = mw.obs_snapshot();

    // Write epilogue: drain the dirty set, then hold the run to the
    // durability contract — no write may be lost on the graceful path, and
    // every acked payload must now be on the store byte for byte.
    let mut writes_ok = true;
    if mix.is_some() {
        mw.flush_dirty();
        writes_ok &= mw.dirty_blocks() == 0 && mw.lost_writes().is_empty();
        for (block, payload) in &shadow {
            writes_ok &= store.read_block(*block) == *payload;
        }
    }

    // Reconcile the driver's own counts against the protocol stats and
    // the runtime's read-class registry. Every block read ticks exactly
    // one registry class; protocol stats count decisions, so per-class
    // equality is exact precisely when no data-plane fallback raced.
    // `store_fallbacks` also counts fallbacks outside the read path (an
    // eviction forward whose source bytes were already gone); those tick
    // `ccm_rt_move_fallbacks_total`, so the exact identity is
    // read-class fallbacks + move fallbacks == store fallbacks.
    let [local, remote, disk, fallback] = class_deltas(&warm_snap, &done_snap);
    let moves = done_snap.counter_sum("ccm_rt_move_fallbacks_total")
        - warm_snap.counter_sum("ccm_rt_move_fallbacks_total");
    let mut reconciled = local + remote + disk + fallback == out.blocks
        && measured.accesses() == out.blocks
        && fallback + moves == measured.store_fallbacks;
    if measured.store_fallbacks == 0 {
        reconciled &= local == measured.local_hits
            && remote == measured.remote_hits
            && disk == measured.disk_reads;
    }
    if mix.is_some() {
        // Driver writes vs. the protocol counter vs. the runtime's
        // `ccm_rt_writes_total` family — and the durability epilogue.
        let rt_writes = done_snap.counter_sum("ccm_rt_writes_total")
            - warm_snap.counter_sum("ccm_rt_writes_total");
        reconciled &= measured.writes == window_writes && rt_writes == window_writes && writes_ok;
    }
    if spec.deterministic {
        assert_eq!(
            measured.store_fallbacks, 0,
            "deterministic replay must not race the data plane"
        );
        assert!(
            reconciled,
            "deterministic replay failed reconciliation: driver {} blocks, \
             registry {:?}, stats {:?}",
            out.blocks,
            [local, remote, disk, fallback],
            measured
        );
    }

    let adm = mw.admission_stats();
    let write_stats = mw.write_stats();
    let latency = LatencySummary::of(&latency.snapshot());
    let report = LoadReport {
        backend: backend.to_string(),
        preset: wl.name().to_string(),
        policy: spec.policy_label().to_string(),
        nodes: spec.nodes,
        clients_per_node: spec.clients_per_node,
        capacity_blocks: spec.capacity_blocks,
        warmup_requests: spec.warmup_requests,
        measure_requests: spec.measure_requests,
        seed: spec.seed,
        deterministic: spec.deterministic,
        blocks: out.blocks,
        bytes: out.bytes,
        digest: out.digest,
        measured,
        reconciled,
        write_ratio: spec.write_ratio,
        write_mode: match spec.write.mode {
            WriteMode::Through => "through".to_string(),
            WriteMode::Back => "back".to_string(),
        },
        writes: window_writes,
        flushes: write_stats.flushes,
        lost_writes: write_stats.lost,
        admission_ghosts: spec.admission_ghosts,
        admission_admitted: adm.admitted,
        admission_rejected: adm.rejected,
        admission_ghost_hits: adm.ghost_hits,
        metrics_scrape: scraped,
        elapsed_s: elapsed,
        rps: measure_reqs.len() as f64 / elapsed,
        mb_per_s: out.bytes as f64 / (1024.0 * 1024.0) / elapsed,
        latency,
    };
    front.shutdown();
    report
}
