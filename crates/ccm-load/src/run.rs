//! The live driver: replay a recorded request stream against a running
//! cluster with closed-loop clients, verify every byte, and reconcile the
//! report against the runtime's own counters.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ccm_core::block::blocks_of_file;
use ccm_core::{FileId as CoreFileId, NodeId};
use ccm_httpd::HttpCluster;
use ccm_obs::{Counter, Histogram, LatencySummary, Registry, Snapshot, Stopwatch};
use ccm_rt::store::read_file_direct;
use ccm_rt::{BlockStore, Catalog, Middleware, RtConfig, SyntheticStore, Transport};
use ccm_traces::FileId as TraceFileId;
use simcore::Rng;

use crate::report::LoadReport;
use crate::spec::LoadSpec;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(FNV_PRIME);
    }
}

/// The cluster front end a run drives: the bare middleware, or the
/// middleware behind per-node HTTP listeners when the spec asks for a
/// live `/metrics` scrape.
enum Front {
    Bare(Middleware),
    Http(HttpCluster),
}

impl Front {
    fn mw(&self) -> &Middleware {
        match self {
            Front::Bare(mw) => mw,
            Front::Http(c) => c.middleware(),
        }
    }

    fn scrape_addr(&self) -> Option<SocketAddr> {
        match self {
            Front::Bare(_) => None,
            Front::Http(c) => Some(c.addrs()[0]),
        }
    }

    fn shutdown(self) {
        match self {
            Front::Bare(mw) => mw.shutdown(),
            Front::Http(c) => c.shutdown(),
        }
    }
}

/// What one phase (warm-up or measurement) delivered. Digests are XOR
/// folds over the per-client stream digests, so the value is independent
/// of client interleaving — the concurrent and deterministic modes agree.
#[derive(Clone, Copy)]
struct PhaseOut {
    blocks: u64,
    bytes: u64,
    digest: u64,
}

/// One closed-loop step: time the cluster read, verify it against the
/// backing store's ground truth, fold the payload into the digest.
#[allow(clippy::too_many_arguments)]
fn serve_one(
    mw: &Middleware,
    node: NodeId,
    store: &dyn BlockStore,
    catalog: &Catalog,
    req: TraceFileId,
    latency: &Histogram,
    requests: &Counter,
    out: &mut PhaseOut,
) {
    let file = CoreFileId(req.0);
    let sw = Stopwatch::start();
    let got = mw.handle(node).read_file(file);
    sw.stop(latency);
    requests.inc();
    let want = read_file_direct(store, catalog, file);
    assert!(
        got == want,
        "corrupt serve: file {} returned {} bytes (want {})",
        req.0,
        got.len(),
        want.len()
    );
    out.blocks += blocks_of_file(want.len() as u64) as u64;
    out.bytes += want.len() as u64;
    fnv1a(&mut out.digest, &got);
}

/// Drive one phase of the stream. `phase_start` is the global index of
/// `reqs[0]`, so request `i` always lands on node `i % nodes` no matter
/// how the phase is split across clients: client `k` of `K` serves the
/// phase indices `j ≡ k (mod K)`, and because `K` is a multiple of the
/// node count its node `(phase_start + k) % nodes` is fixed — `K / nodes`
/// closed-loop clients per node, exactly the paper's client model.
#[allow(clippy::too_many_arguments)]
fn drive_phase(
    mw: &Middleware,
    store: &Arc<SyntheticStore>,
    catalog: &Catalog,
    reqs: &[TraceFileId],
    phase_start: usize,
    nodes: usize,
    clients: usize,
    deterministic: bool,
    latency: &Histogram,
    requests: &Counter,
    scrape: Option<SocketAddr>,
) -> (PhaseOut, Option<bool>) {
    let part = |k: usize| {
        let node = NodeId(((phase_start + k) % nodes) as u16);
        let mut out = PhaseOut {
            blocks: 0,
            bytes: 0,
            digest: FNV_OFFSET,
        };
        for j in (k..reqs.len()).step_by(clients) {
            serve_one(
                mw, node, &**store, catalog, reqs[j], latency, requests, &mut out,
            );
        }
        out
    };

    let fold = |parts: Vec<PhaseOut>| {
        parts.into_iter().fold(
            PhaseOut {
                blocks: 0,
                bytes: 0,
                digest: 0,
            },
            |mut acc, p| {
                acc.blocks += p.blocks;
                acc.bytes += p.bytes;
                acc.digest ^= p.digest;
                acc
            },
        )
    };

    if deterministic {
        // In-order replay, but folded into the same per-client digest
        // slots the concurrent mode uses, so digests match across modes.
        let mut parts = vec![
            PhaseOut {
                blocks: 0,
                bytes: 0,
                digest: FNV_OFFSET,
            };
            clients
        ];
        for (j, req) in reqs.iter().enumerate() {
            let node = NodeId(((phase_start + j) % nodes) as u16);
            serve_one(
                mw,
                node,
                &**store,
                catalog,
                *req,
                latency,
                requests,
                &mut parts[j % clients],
            );
        }
        let scraped = scrape.map(scrape_ok);
        (fold(parts), scraped)
    } else {
        std::thread::scope(|s| {
            let joins: Vec<_> = (0..clients).map(|k| s.spawn(move || part(k))).collect();
            // Scrape while the clients are in flight: the run report's
            // `metrics_scrape` certifies the exposition is live mid-load.
            let scraped = scrape.map(scrape_ok);
            let parts = joins
                .into_iter()
                .map(|j| j.join().expect("load client panicked"))
                .collect();
            (fold(parts), scraped)
        })
    }
}

/// `GET /metrics` from one node and check that both the driver's and the
/// runtime's counter families are present.
fn scrape_ok(addr: SocketAddr) -> bool {
    match ccm_httpd::client::get(addr, "/metrics") {
        Ok(r) => {
            let body = String::from_utf8_lossy(&r.body);
            r.status == 200
                && body.contains("ccm_load_requests_total")
                && body.contains("ccm_rt_reads_total")
        }
        Err(_) => false,
    }
}

/// Per-class deltas of `ccm_rt_reads_total` between two registry
/// snapshots, in `[local, remote, disk, fallback]` order.
fn class_deltas(warm: &Snapshot, done: &Snapshot) -> [u64; 4] {
    let d = |class: &str| {
        done.counter_sum_where("ccm_rt_reads_total", "class", class)
            - warm.counter_sum_where("ccm_rt_reads_total", "class", class)
    };
    [d("local"), d("remote"), d("disk"), d("fallback")]
}

/// Run `spec` over the in-process channel LAN.
pub fn run(spec: &LoadSpec) -> LoadReport {
    run_inner(spec, "channel", None)
}

/// Run `spec` over a caller-built transport (e.g. `ccm-net`'s `TcpLan`),
/// labelling the report's `backend` field with `backend`.
pub fn run_on(spec: &LoadSpec, transport: Arc<dyn Transport>, backend: &str) -> LoadReport {
    run_inner(spec, backend, Some(transport))
}

fn run_inner(spec: &LoadSpec, backend: &str, transport: Option<Arc<dyn Transport>>) -> LoadReport {
    assert!(spec.nodes > 0, "empty cluster");
    assert!(spec.clients_per_node > 0, "no clients");
    assert!(spec.measure_requests > 0, "empty measurement window");

    let wl = spec.workload();
    let stream = wl.record(spec.total_requests(), &mut Rng::new(spec.seed).substream(1));
    let catalog = Catalog::new(wl.sizes().to_vec());
    let store = Arc::new(SyntheticStore::new(catalog.clone(), spec.seed));
    let registry = Registry::new();
    let cfg = RtConfig {
        nodes: spec.nodes,
        capacity_blocks: spec.capacity_blocks,
        policy: spec.policy,
        // Deterministic replay asserts that no fetch ever falls back to
        // the store; on a loaded (or single-core) machine OS scheduling
        // can stall a service thread well past the production timeout,
        // so give sequential replay a timeout only a genuine hang hits.
        fetch_timeout: if spec.deterministic {
            Duration::from_secs(60)
        } else {
            Duration::from_secs(2)
        },
        obs: Some(registry.clone()),
        ..RtConfig::default()
    };
    let front = match (transport, spec.serve_metrics) {
        (None, false) => Front::Bare(Middleware::start(cfg, catalog.clone(), store.clone())),
        (None, true) => Front::Http(HttpCluster::start(cfg, catalog.clone(), store.clone())),
        (Some(t), false) => {
            Front::Bare(Middleware::start_on(cfg, catalog.clone(), store.clone(), t))
        }
        (Some(t), true) => Front::Http(HttpCluster::start_on(
            cfg,
            catalog.clone(),
            store.clone(),
            t,
        )),
    };
    let mw = front.mw();
    let clients = spec.total_clients();

    let phase_latency = |phase: &str| {
        registry.histogram(
            "ccm_load_request_latency_ns",
            "End-to-end file-read latency as the load generator sees it",
            &[("phase", phase)],
        )
    };
    let phase_requests = |phase: &str| {
        registry.counter(
            "ccm_load_requests_total",
            "Requests the load generator completed",
            &[("phase", phase)],
        )
    };

    // Warm-up: populate the caches, then drop the counters on the floor.
    let (warm_reqs, measure_reqs) = stream.split_at(spec.warmup_requests);
    drive_phase(
        mw,
        &store,
        &catalog,
        warm_reqs,
        0,
        spec.nodes,
        clients,
        spec.deterministic,
        &phase_latency("warmup"),
        &phase_requests("warmup"),
        None,
    );
    mw.quiesce();
    let warm_stats = mw.stats();
    let warm_snap = mw.obs_snapshot();

    // Measurement window.
    let latency = phase_latency("measure");
    let started = Instant::now();
    let (out, scraped) = drive_phase(
        mw,
        &store,
        &catalog,
        measure_reqs,
        spec.warmup_requests,
        spec.nodes,
        clients,
        spec.deterministic,
        &latency,
        &phase_requests("measure"),
        front.scrape_addr(),
    );
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    mw.quiesce();
    mw.check_invariants();
    let measured = mw.stats().delta_since(&warm_stats);
    let done_snap = mw.obs_snapshot();

    // Reconcile the driver's own counts against the protocol stats and
    // the runtime's read-class registry. Every block read ticks exactly
    // one registry class; protocol stats count decisions, so per-class
    // equality is exact precisely when no data-plane fallback raced.
    let [local, remote, disk, fallback] = class_deltas(&warm_snap, &done_snap);
    let mut reconciled = local + remote + disk + fallback == out.blocks
        && measured.accesses() == out.blocks
        && fallback == measured.store_fallbacks;
    if measured.store_fallbacks == 0 {
        reconciled &= local == measured.local_hits
            && remote == measured.remote_hits
            && disk == measured.disk_reads;
    }
    if spec.deterministic {
        assert_eq!(
            measured.store_fallbacks, 0,
            "deterministic replay must not race the data plane"
        );
        assert!(
            reconciled,
            "deterministic replay failed reconciliation: driver {} blocks, \
             registry {:?}, stats {:?}",
            out.blocks,
            [local, remote, disk, fallback],
            measured
        );
    }

    let latency = LatencySummary::of(&latency.snapshot());
    let report = LoadReport {
        backend: backend.to_string(),
        preset: wl.name().to_string(),
        policy: spec.policy_label().to_string(),
        nodes: spec.nodes,
        clients_per_node: spec.clients_per_node,
        capacity_blocks: spec.capacity_blocks,
        warmup_requests: spec.warmup_requests,
        measure_requests: spec.measure_requests,
        seed: spec.seed,
        deterministic: spec.deterministic,
        blocks: out.blocks,
        bytes: out.bytes,
        digest: out.digest,
        measured,
        reconciled,
        metrics_scrape: scraped,
        elapsed_s: elapsed,
        rps: measure_reqs.len() as f64 / elapsed,
        mb_per_s: out.bytes as f64 / (1024.0 * 1024.0) / elapsed,
        latency,
    };
    front.shutdown();
    report
}
