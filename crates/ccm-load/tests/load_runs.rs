//! ccm-load against live clusters: determinism, mode invariance, metrics.

use std::sync::Arc;

use ccm_load::{run, run_on, simulate, LoadSpec};
use ccm_net::TcpLan;
use ccm_rt::WriteConfig;
use ccm_traces::{Preset, ScanConfig};

/// A cell small enough for CI but big enough to evict and cooperate.
fn small_spec() -> LoadSpec {
    let mut spec = LoadSpec::new(Preset::Calgary);
    spec.head_files = Some(120);
    spec.nodes = 3;
    spec.clients_per_node = 2;
    spec.capacity_blocks = 48;
    spec.warmup_requests = 150;
    spec.measure_requests = 300;
    spec.seed = 0xC0FFEE;
    spec
}

#[test]
fn deterministic_run_matches_the_simulator() {
    let mut spec = small_spec();
    spec.deterministic = true;
    let live = run(&spec);
    let sim = simulate(&spec);
    assert_eq!(live.measured, sim.measured);
    assert_eq!(live.blocks, sim.blocks);
    assert_eq!(live.bytes, sim.bytes);
    assert_eq!(live.measured.store_fallbacks, 0);
    assert!(live.reconciled);
    assert!(live.measured.remote_hits > 0, "no cooperation exercised");
}

#[test]
fn deterministic_report_is_bit_identical_across_reruns() {
    let mut spec = small_spec();
    spec.deterministic = true;
    let a = run(&spec);
    let b = run(&spec);
    assert_eq!(a.deterministic_json(), b.deterministic_json());
}

#[test]
fn concurrent_mode_delivers_the_same_bytes_as_deterministic() {
    let mut spec = small_spec();
    spec.deterministic = true;
    let det = run(&spec);
    spec.deterministic = false;
    let conc = run(&spec);
    // Interleaving changes the protocol's decisions, never the payload.
    assert_eq!(conc.digest, det.digest);
    assert_eq!(conc.bytes, det.bytes);
    assert_eq!(conc.blocks, det.blocks);
    assert!(conc.reconciled, "driver and runtime counters disagree");
    assert!(conc.rps > 0.0);
    assert_eq!(conc.latency.count, spec.measure_requests as u64);
}

#[test]
fn serve_metrics_scrapes_a_live_exposition() {
    let mut spec = small_spec();
    spec.warmup_requests = 60;
    spec.measure_requests = 120;
    spec.serve_metrics = true;
    let report = run(&spec);
    assert_eq!(report.metrics_scrape, Some(true));
    assert!(report.reconciled);
}

#[test]
fn tcp_backend_matches_channel_deterministically() {
    let mut spec = small_spec();
    spec.deterministic = true;
    spec.warmup_requests = 80;
    spec.measure_requests = 160;
    let channel = run(&spec);
    let lan = Arc::new(TcpLan::loopback(spec.nodes).expect("bind loopback"));
    let tcp = run_on(&spec, lan, "tcp");
    assert_eq!(tcp.backend, "tcp");
    assert_eq!(tcp.measured, channel.measured);
    assert_eq!(tcp.digest, channel.digest);
    assert_eq!(tcp.bytes, channel.bytes);
    assert!(tcp.reconciled);
}

/// Write-through mix: every read after a write is verified against the
/// shadow payloads inside the driver, the write counters reconcile across
/// driver / protocol / registry, and the report replays bit-identically.
#[test]
fn write_through_mix_verifies_and_reconciles() {
    let mut spec = small_spec();
    spec.deterministic = true;
    spec.write_ratio = 0.25;
    let a = run(&spec);
    assert!(a.writes > 0, "mix never wrote");
    assert!(a.reconciled, "write run failed reconciliation");
    assert_eq!(a.lost_writes, 0);
    // Write-through persists inline: nothing for the flusher to do.
    assert_eq!(a.flushes, 0);
    assert_eq!(a.write_mode, "through");
    let b = run(&spec);
    assert_eq!(a.deterministic_json(), b.deterministic_json());
}

/// Write-back mix: acks outrun the store, the dirty set drains through
/// budget pressure plus the end-of-run flush, and the same durability
/// verification (shadow vs. store) still closes — on both backends, with
/// identical deterministic reports.
#[test]
fn write_back_mix_flushes_and_matches_across_backends() {
    let mut spec = small_spec();
    spec.deterministic = true;
    spec.write_ratio = 0.25;
    spec.write = WriteConfig::back(16);
    let channel = run(&spec);
    assert!(channel.writes > 0);
    assert!(channel.reconciled, "write-back run failed reconciliation");
    assert_eq!(channel.lost_writes, 0);
    assert!(channel.flushes > 0, "write-back never flushed");
    assert_eq!(channel.write_mode, "back");
    let lan = Arc::new(TcpLan::loopback(spec.nodes).expect("bind loopback"));
    let tcp = run_on(&spec, lan, "tcp");
    assert!(tcp.reconciled);
    assert_eq!(tcp.digest, channel.digest);
    assert_eq!(tcp.writes, channel.writes);
    assert_eq!(tcp.measured, channel.measured);
}

/// Scan-heavy preset with admission on vs. off: the filter must reject
/// one-touch scan blocks (rejections observed, ghost hits possible) and
/// must not lose cluster-memory hit ratio against the unfiltered run.
#[test]
fn admission_resists_the_scan_tail() {
    let mut spec = small_spec();
    spec.deterministic = true;
    spec.scan = Some(ScanConfig {
        scan_files: 64,
        scan_file_bytes: 4 * 1024,
        period: 3,
    });
    let off = run(&spec);
    assert!(off.reconciled);
    assert_eq!(off.admission_rejected, 0, "admission off must not reject");
    spec.admission_ghosts = Some(128);
    let on = run(&spec);
    assert!(on.reconciled);
    assert!(on.admission_rejected > 0, "scan touches never rejected");
    assert!(
        on.total_hit_ratio() >= off.total_hit_ratio(),
        "admission lost hit ratio: {} vs {}",
        on.total_hit_ratio(),
        off.total_hit_ratio()
    );
}

#[test]
fn report_json_round_trips_the_key_fields() {
    let mut spec = small_spec();
    spec.deterministic = true;
    spec.warmup_requests = 60;
    spec.measure_requests = 120;
    let report = run(&spec);
    let det = report.deterministic_json();
    let full = report.to_json();
    for json in [&det, &full] {
        assert!(json.contains("\"backend\": \"channel\""));
        assert!(json.contains("\"preset\": \"calgary-head120\""));
        assert!(json.contains(&format!("\"digest\": \"{:#018x}\"", report.digest)));
        assert!(json.contains("\"reconciled\": true"));
    }
    assert!(!det.contains("elapsed_s"));
    assert!(full.contains("\"elapsed_s\""));
    assert!(full.contains("\"latency_ns\""));
    assert!(!report.summary().is_empty());
}
