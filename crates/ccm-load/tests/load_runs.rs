//! ccm-load against live clusters: determinism, mode invariance, metrics.

use std::sync::Arc;

use ccm_load::{run, run_on, simulate, LoadSpec};
use ccm_net::TcpLan;
use ccm_traces::Preset;

/// A cell small enough for CI but big enough to evict and cooperate.
fn small_spec() -> LoadSpec {
    let mut spec = LoadSpec::new(Preset::Calgary);
    spec.head_files = Some(120);
    spec.nodes = 3;
    spec.clients_per_node = 2;
    spec.capacity_blocks = 48;
    spec.warmup_requests = 150;
    spec.measure_requests = 300;
    spec.seed = 0xC0FFEE;
    spec
}

#[test]
fn deterministic_run_matches_the_simulator() {
    let mut spec = small_spec();
    spec.deterministic = true;
    let live = run(&spec);
    let sim = simulate(&spec);
    assert_eq!(live.measured, sim.measured);
    assert_eq!(live.blocks, sim.blocks);
    assert_eq!(live.bytes, sim.bytes);
    assert_eq!(live.measured.store_fallbacks, 0);
    assert!(live.reconciled);
    assert!(live.measured.remote_hits > 0, "no cooperation exercised");
}

#[test]
fn deterministic_report_is_bit_identical_across_reruns() {
    let mut spec = small_spec();
    spec.deterministic = true;
    let a = run(&spec);
    let b = run(&spec);
    assert_eq!(a.deterministic_json(), b.deterministic_json());
}

#[test]
fn concurrent_mode_delivers_the_same_bytes_as_deterministic() {
    let mut spec = small_spec();
    spec.deterministic = true;
    let det = run(&spec);
    spec.deterministic = false;
    let conc = run(&spec);
    // Interleaving changes the protocol's decisions, never the payload.
    assert_eq!(conc.digest, det.digest);
    assert_eq!(conc.bytes, det.bytes);
    assert_eq!(conc.blocks, det.blocks);
    assert!(conc.reconciled, "driver and runtime counters disagree");
    assert!(conc.rps > 0.0);
    assert_eq!(conc.latency.count, spec.measure_requests as u64);
}

#[test]
fn serve_metrics_scrapes_a_live_exposition() {
    let mut spec = small_spec();
    spec.warmup_requests = 60;
    spec.measure_requests = 120;
    spec.serve_metrics = true;
    let report = run(&spec);
    assert_eq!(report.metrics_scrape, Some(true));
    assert!(report.reconciled);
}

#[test]
fn tcp_backend_matches_channel_deterministically() {
    let mut spec = small_spec();
    spec.deterministic = true;
    spec.warmup_requests = 80;
    spec.measure_requests = 160;
    let channel = run(&spec);
    let lan = Arc::new(TcpLan::loopback(spec.nodes).expect("bind loopback"));
    let tcp = run_on(&spec, lan, "tcp");
    assert_eq!(tcp.backend, "tcp");
    assert_eq!(tcp.measured, channel.measured);
    assert_eq!(tcp.digest, channel.digest);
    assert_eq!(tcp.bytes, channel.bytes);
    assert!(tcp.reconciled);
}

#[test]
fn report_json_round_trips_the_key_fields() {
    let mut spec = small_spec();
    spec.deterministic = true;
    spec.warmup_requests = 60;
    spec.measure_requests = 120;
    let report = run(&spec);
    let det = report.deterministic_json();
    let full = report.to_json();
    for json in [&det, &full] {
        assert!(json.contains("\"backend\": \"channel\""));
        assert!(json.contains("\"preset\": \"calgary-head120\""));
        assert!(json.contains(&format!("\"digest\": \"{:#018x}\"", report.digest)));
        assert!(json.contains("\"reconciled\": true"));
    }
    assert!(!det.contains("elapsed_s"));
    assert!(full.contains("\"elapsed_s\""));
    assert!(full.contains("\"latency_ns\""));
    assert!(!report.summary().is_empty());
}
