//! The front-door drive mode against live clusters: determinism across
//! reruns and transports, both backends, every policy verified.

use std::sync::Arc;

use ccm_core::ReplacementPolicy;
use ccm_front::PolicyKind;
use ccm_load::{run_front, run_front_on, BackendChoice, FrontSpec};
use ccm_net::TcpLan;
use ccm_traces::Preset;

/// A cell small enough for CI but big enough to evict and hand off.
fn small_spec(dispatch: PolicyKind, backend: BackendChoice) -> FrontSpec {
    let mut spec = FrontSpec::new(Preset::Calgary, dispatch, backend);
    spec.head_files = Some(100);
    spec.nodes = 2;
    spec.clients_per_node = 2;
    spec.capacity_blocks = 48;
    spec.warmup_requests = 100;
    spec.measure_requests = 200;
    spec.seed = 0xF407;
    spec.deterministic = true;
    spec
}

#[test]
fn deterministic_front_run_reconciles_on_both_backends() {
    for backend in [
        BackendChoice::Ccm(ReplacementPolicy::MasterPreserving),
        BackendChoice::L2s,
    ] {
        let spec = small_spec(PolicyKind::RoundRobin, backend);
        let report = run_front(&spec);
        assert!(
            report.reconciled,
            "{} failed reconciliation",
            report.backend
        );
        assert_eq!(report.requests, spec.measure_requests as u64);
        assert!(report.hits > 0, "{}: warm cache never hit", report.backend);
        assert!(report.accesses >= report.hits);
        assert_eq!(report.backend, backend.label());
    }
}

#[test]
fn front_deterministic_report_is_bit_identical_across_reruns() {
    let spec = small_spec(
        PolicyKind::ContentAware,
        BackendChoice::Ccm(ReplacementPolicy::MasterPreserving),
    );
    let a = run_front(&spec);
    let b = run_front(&spec);
    assert_eq!(a.deterministic_json(), b.deterministic_json());
}

#[test]
fn front_tcp_transport_matches_channel_bit_for_bit() {
    let spec = small_spec(
        PolicyKind::ConsistentHash,
        BackendChoice::Ccm(ReplacementPolicy::MasterPreserving),
    );
    let channel = run_front(&spec);
    let lan = Arc::new(TcpLan::loopback(spec.nodes).expect("bind loopback"));
    let tcp = run_front_on(&spec, lan, "tcp");
    assert_eq!(tcp.transport, "tcp");
    assert_eq!(channel.transport, "channel");
    // The deterministic projection deliberately omits the transport
    // label: the cluster's interconnect must not change what was served.
    assert_eq!(tcp.deterministic_json(), channel.deterministic_json());
}

#[test]
fn concurrent_front_mode_delivers_the_same_bytes_as_deterministic() {
    let mut spec = small_spec(
        PolicyKind::RoundRobin,
        BackendChoice::Ccm(ReplacementPolicy::MasterPreserving),
    );
    let det = run_front(&spec);
    spec.deterministic = false;
    let conc = run_front(&spec);
    // Interleaving changes cache outcomes, never the payload: round-robin
    // dispatch is an atomic sequence, so every request reads the same
    // verified bytes in both modes.
    assert_eq!(conc.digest, det.digest);
    assert_eq!(conc.bytes, det.bytes);
    assert_eq!(conc.blocks, det.blocks);
    assert!(conc.reconciled);
    assert!(conc.rps > 0.0);
    assert_eq!(conc.latency.count, spec.measure_requests as u64);
}

#[test]
fn front_report_json_round_trips_the_key_fields() {
    let spec = small_spec(PolicyKind::LoadAware, BackendChoice::L2s);
    let report = run_front(&spec);
    let det = report.deterministic_json();
    let full = report.to_json();
    for json in [&det, &full] {
        assert!(json.contains("\"backend\": \"l2s\""));
        assert!(json.contains("\"dispatch\": \"load-aware\""));
        assert!(json.contains("\"cache_policy\": \"whole-file-lru\""));
        assert!(json.contains("\"preset\": \"calgary-head100\""));
        assert!(json.contains(&format!("\"digest\": \"{:#018x}\"", report.digest)));
        assert!(json.contains("\"reconciled\": true"));
    }
    assert!(
        !det.contains("transport"),
        "transport must stay wall-clock-side"
    );
    assert!(full.contains("\"transport\": \"-\""));
    assert!(full.contains("\"latency_ns\""));
    assert!(!report.summary().is_empty());
}
