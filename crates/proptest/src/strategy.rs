//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically maps a [`TestRng`] to a value. Unlike
//! the real proptest there is no value tree and no shrinking: `generate` is
//! the whole story, which keeps the shim small while preserving the API
//! shape tests are written against.

use crate::pattern::Pattern;
use crate::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produce one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Box a strategy (used by `prop_oneof!` to unify arm types).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-range strategy for `T`: `any::<u64>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly symmetric around zero; full bit-pattern floats
        // (NaN, infinities) are not useful defaults for these tests.
        (rng.next_f64() - 0.5) * 2.0 * 1e12
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20 + rng.below(0x5F) as u8) as char
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = if span > u64::MAX as u128 {
                    // Only reachable for u128-sized spans of 64-bit types;
                    // two draws cover it.
                    ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span
                } else {
                    rng.below(span as u64) as u128
                };
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let off = if span > u64::MAX as u128 {
                    ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span
                } else {
                    rng.below(span as u64) as u128
                };
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).generate(rng) as f32
    }
}

/// Pattern-string strategies: `"[a-z]{1,8}"` generates matching `String`s.
/// Supports literal characters, character classes with ranges and `&&[^…]`
/// subtraction, and `{m}` / `{m,n}` / `?` / `+` / `*` repetition.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        Pattern::compile(self).generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Inclusive length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// See [`crate::option::of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> OptionStrategy<S> {
    pub(crate) fn new(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.chance(0.25) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "empty prop_oneof!");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(0xDEAD_BEEF)
    }

    #[test]
    fn int_ranges_cover_exact_bounds() {
        let mut r = rng();
        let mut saw = [false; 4];
        for _ in 0..200 {
            saw[(3u32..7).generate(&mut r) as usize - 3] = true;
        }
        assert_eq!(saw, [true; 4]);
        for _ in 0..50 {
            let v = (0i64..=0).generate(&mut r);
            assert_eq!(v, 0);
        }
    }

    #[test]
    fn f64_range_stays_inside() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (0.3f64..1.2).generate(&mut r);
            assert!((0.3..1.2).contains(&v), "{v}");
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let u = Union::new(vec![boxed(Just(1u8)), boxed(Just(2)), boxed(Just(3))]);
        let mut r = rng();
        let mut saw = [false; 3];
        for _ in 0..100 {
            saw[u.generate(&mut r) as usize - 1] = true;
        }
        assert_eq!(saw, [true; 3]);
    }

    #[test]
    fn option_yields_both_variants() {
        let s = OptionStrategy::new(0u8..5);
        let mut r = rng();
        let values: Vec<_> = (0..100).map(|_| s.generate(&mut r)).collect();
        assert!(values.iter().any(|v| v.is_none()));
        assert!(values.iter().any(|v| v.is_some()));
    }

    #[test]
    fn vec_and_map_compose() {
        let s = VecStrategy::new(0u16..10, SizeRange::from(2usize..5)).prop_map(|v| v.len());
        let mut r = rng();
        for _ in 0..50 {
            let len = s.generate(&mut r);
            assert!((2..5).contains(&len));
        }
    }
}
