//! A small regex-subset compiler for pattern-string strategies.
//!
//! Supports the pattern shapes the workspace's fuzz tests use:
//!
//! * literal characters — `/`, `G`, `:` …
//! * character classes — `[a-zA-Z0-9/_.-]`, `[ -~]` (a trailing or leading
//!   `-` is a literal dash), with `&&[^…]` class subtraction as in
//!   `[ -~&&[^:]]`
//! * repetition on the preceding atom — `{m}`, `{m,n}`, `?`, `*`, `+`
//!   (`*`/`+` are capped at 32 repeats; there is no backtracking engine
//!   behind this, only generation)
//!
//! Anything outside this subset panics at compile time with the offending
//! pattern, which turns an unsupported test pattern into an immediate,
//! attributable failure instead of silently wrong data.

use crate::TestRng;

/// One generatable unit: a fixed char or a choice from a class.
enum Atom {
    Literal(char),
    /// Sorted, deduplicated set of candidate characters.
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// A compiled pattern; see [`Pattern::compile`].
pub struct Pattern {
    pieces: Vec<Piece>,
}

impl Pattern {
    /// Compile `pattern`, panicking on anything outside the supported subset.
    pub fn compile(pattern: &str) -> Pattern {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars, pattern)),
                '\\' => Atom::Literal(
                    chars
                        .next()
                        .unwrap_or_else(|| panic!("trailing backslash in pattern {pattern:?}")),
                ),
                '{' | '}' | '?' | '*' | '+' => {
                    panic!("repetition without preceding atom in pattern {pattern:?}")
                }
                other => Atom::Literal(other),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    parse_braces(&mut chars, pattern)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 32)
                }
                Some('+') => {
                    chars.next();
                    (1, 32)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        Pattern { pieces }
    }

    /// Generate one matching string.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let reps = piece.min + rng.below(u64::from(piece.max - piece.min) + 1) as u32;
            for _ in 0..reps {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

/// Parse the body of a class after its opening `[`, consuming the final `]`.
/// Handles `a-z` ranges, literal `-` at either end, and `&&[^…]` subtraction.
fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
    let include = parse_class_members(chars, pattern);
    let mut exclude = Vec::new();
    // The members parser stops after consuming the first `&` of `&&`; the
    // rest of the subtraction syntax is consumed here.
    if chars.peek() == Some(&'&') {
        chars.next();
        if chars.next() != Some('[') || chars.next() != Some('^') {
            panic!("only `&&[^…]` subtraction is supported in pattern {pattern:?}");
        }
        exclude = parse_class_members(chars, pattern);
        if chars.next() != Some(']') {
            panic!("unterminated class in pattern {pattern:?}");
        }
    }
    let set: Vec<char> = include
        .into_iter()
        .filter(|c| !exclude.contains(c))
        .collect();
    assert!(
        !set.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    set
}

/// Parse members up to (and consuming) the closing `]`, stopping before `&&`.
fn parse_class_members(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> Vec<char> {
    let mut set = Vec::new();
    loop {
        let c = match chars.next() {
            Some(']') => break,
            Some('&') if chars.peek() == Some(&'&') => return dedup(set),
            Some('\\') => chars
                .next()
                .unwrap_or_else(|| panic!("trailing backslash in pattern {pattern:?}")),
            Some(c) => c,
            None => panic!("unterminated class in pattern {pattern:?}"),
        };
        if chars.peek() == Some(&'-') {
            // Peek past the dash: `a-z` is a range unless the dash is the
            // final member (then both are literals).
            let mut ahead = chars.clone();
            ahead.next();
            match ahead.peek() {
                Some(']') | Some('&') | None => set.push(c),
                Some(&hi) => {
                    chars.next();
                    chars.next();
                    assert!(c <= hi, "inverted range {c}-{hi} in pattern {pattern:?}");
                    set.extend(c..=hi);
                }
            }
        } else {
            set.push(c);
        }
    }
    dedup(set)
}

fn dedup(mut set: Vec<char>) -> Vec<char> {
    set.sort_unstable();
    set.dedup();
    set
}

fn parse_braces(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> (u32, u32) {
    let mut body = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            let (lo, hi) = match body.split_once(',') {
                Some((lo, hi)) => (lo, hi),
                None => (body.as_str(), body.as_str()),
            };
            let parse = |s: &str| {
                s.trim()
                    .parse::<u32>()
                    .unwrap_or_else(|_| panic!("bad repetition {{{body}}} in pattern {pattern:?}"))
            };
            let (min, max) = (parse(lo), parse(hi));
            assert!(
                min <= max,
                "inverted repetition {{{body}}} in pattern {pattern:?}"
            );
            return (min, max);
        }
        body.push(c);
    }
    panic!("unterminated repetition in pattern {pattern:?}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: u64) -> String {
        Pattern::compile(pattern).generate(&mut TestRng::new(seed))
    }

    #[test]
    fn literal_prefix_and_class() {
        for seed in 0..50 {
            let s = gen("/[a-zA-Z0-9/_.-]{0,40}", seed);
            assert!(s.starts_with('/'));
            assert!(s.len() <= 41);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "/_.-".contains(c)));
        }
    }

    #[test]
    fn printable_ascii_range() {
        let mut lens = Vec::new();
        for seed in 0..80 {
            let s = gen("[ -~]{0,80}", seed);
            lens.push(s.len());
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
        assert!(lens.contains(&0) || lens.iter().any(|&l| l > 60));
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut saw_dash = false;
        for seed in 0..200 {
            let s = gen("[A-Za-z-]{1,16}", seed);
            assert!(!s.is_empty() && s.len() <= 16);
            assert!(s.chars().all(|c| c.is_ascii_alphabetic() || c == '-'));
            saw_dash |= s.contains('-');
        }
        assert!(saw_dash, "dash never generated from [A-Za-z-]");
    }

    #[test]
    fn class_subtraction_excludes() {
        for seed in 0..100 {
            let s = gen("[ -~&&[^:]]{0,30}", seed);
            assert!(!s.contains(':'), "{s:?}");
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn fixed_count_and_quantifiers() {
        assert_eq!(gen("a{3}", 1), "aaa");
        for seed in 0..20 {
            let s = gen("ab?c+", seed);
            assert!(s.starts_with('a'));
            assert!(s.ends_with('c'));
        }
    }

    #[test]
    #[should_panic(expected = "repetition without preceding atom")]
    fn bare_quantifier_rejected() {
        Pattern::compile("{3}");
    }
}
