//! # proptest (in-tree shim)
//!
//! A dependency-free stand-in for the `proptest` crate, implementing exactly
//! the API surface this workspace's property tests use. The build
//! environment has no access to a crate registry, so the real proptest
//! cannot be fetched; this shim keeps the property-test suites source- and
//! semantics-compatible:
//!
//! * [`Strategy`] with `prop_map`, integer/float range strategies, tuples,
//!   [`Just`], [`any`], `prop::collection::vec`, `prop::option::of`,
//!   `prop_oneof!`, and pattern-string strategies (`"[ -~]{0,80}"`).
//! * The [`proptest!`] macro with `#![proptest_config(...)]`, and the
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the generated inputs and a
//!   case seed instead of a minimized example.
//! * **Deterministic by default.** Cases derive from a hash of the test's
//!   module path, so every run explores the same inputs (CI-reproducible).
//!   Set `PROPTEST_CASES` to change the case count without editing code.
//! * Pattern strings support character classes (with ranges, `&&[^…]`
//!   subtraction) and `{m,n}` repetition — the subset our tests use — not
//!   full regex.

pub mod pattern;
pub mod strategy;

pub use strategy::{
    any, boxed, Any, Arbitrary, BoxedStrategy, Just, Map, OptionStrategy, SizeRange, Strategy,
    Union, VecStrategy,
};

/// Strategy factories namespaced like the real crate (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec`s of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// A strategy producing `None` about a quarter of the time and
    /// `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy::new(inner)
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Per-test configuration; set with `#![proptest_config(...)]` inside
/// [`proptest!`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A property-level failure raised by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The shim's seeded generator (SplitMix64 stream): deterministic per test
/// and case, independent across cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the given case seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)` (multiply-shift; `bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Drives the cases of one property; used by the [`proptest!`] expansion.
pub struct TestRunner {
    cases: u32,
    name_hash: u64,
    case_index: u32,
    case_seed: u64,
}

impl TestRunner {
    /// A runner for the property named `name` (its module path).
    pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases);
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the test name
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            cases,
            name_hash: h,
            case_index: 0,
            case_seed: 0,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The generator for the next case.
    pub fn next_case(&mut self) -> TestRng {
        let mut s = self.name_hash ^ ((self.case_index as u64) << 32 | 0x5EED);
        let mut rng = TestRng::new(0);
        rng.state = s;
        // Burn one step so consecutive case seeds decorrelate.
        let _ = rng.next_u64();
        s = rng.state;
        self.case_seed = s;
        self.case_index += 1;
        TestRng::new(s)
    }

    /// Seed of the case most recently produced by [`Self::next_case`].
    pub fn case_seed(&self) -> u64 {
        self.case_seed
    }

    /// 1-based index of the current case.
    pub fn case_index(&self) -> u32 {
        self.case_index
    }
}

/// Render generated inputs for a failure report.
pub fn format_inputs(inputs: &[(&str, String)]) -> String {
    inputs
        .iter()
        .map(|(name, value)| format!("    {name} = {value}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Define property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)
     $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(
                    config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _ in 0..runner.cases() {
                    let mut case_rng = runner.next_case();
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut case_rng);)+
                    let inputs = $crate::format_inputs(&[
                        $((stringify!($arg), format!("{:?}", $arg))),+
                    ]);
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), $crate::TestCaseError> {
                                $body
                                ::std::result::Result::Ok(())
                            },
                        ),
                    );
                    match outcome {
                        ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                        ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                            panic!(
                                "property failed at case {} (seed {:#018x}):\n{}\ninputs:\n{}",
                                runner.case_index(),
                                runner.case_seed(),
                                e,
                                inputs,
                            );
                        }
                        ::std::result::Result::Err(payload) => {
                            eprintln!(
                                "property panicked at case {} (seed {:#018x}); inputs:\n{}",
                                runner.case_index(),
                                runner.case_seed(),
                                inputs,
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property, failing the case (not panicking)
/// so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left,
                right,
            )));
        }
    }};
}

/// Assert inequality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+),
                left,
            )));
        }
    }};
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::new(7);
        let mut b = crate::TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn runner_reads_env_override() {
        // No env set in tests: falls back to the config value.
        let r = crate::TestRunner::new(ProptestConfig::with_cases(7), "x");
        assert!(r.cases() == 7 || std::env::var("PROPTEST_CASES").is_ok());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in ((0u16..4), (10u64..20)).prop_map(|(a, b)| (b, a)),
            opt in prop::option::of(1u32..3),
        ) {
            prop_assert!((10..20).contains(&pair.0));
            prop_assert!(pair.1 < 4);
            if let Some(x) = opt {
                prop_assert!((1..3).contains(&x));
            }
        }

        #[test]
        fn oneof_picks_each_arm(choice in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&choice));
        }

        #[test]
        fn pattern_strings_match_their_class(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    // Failure paths: prop_assert must abort the case via Err, not panic
    // directly, and the harness must convert that into a panic. The inner
    // `#[test]` lives inside this fn body so the harness never collects it
    // as a (failing) test of its own — hence the allow.
    #[test]
    #[allow(unnameable_test_items)]
    fn failing_property_panics_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[test]
                fn always_fails(x in 0u8..4) { prop_assert!(x > 200, "x was {}", x); }
            }
            always_fails();
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("property failed"), "got: {msg}");
        assert!(msg.contains("inputs"), "got: {msg}");
    }
}
