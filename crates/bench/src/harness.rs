//! Shared experiment plumbing: run matrices, CSV output, pretty tables.

use ccm_traces::{Preset, Workload};
use ccm_webserver::{CcmVariant, RunMetrics, ServerKind, SimConfig};
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

/// The megabyte, for sweep definitions.
pub const MB: u64 = 1024 * 1024;

/// Full (paper-scale) or quick (smoke-test) runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Paper-scale: 30k warm-up + 60k measured requests per point.
    Full,
    /// Smoke-test scale for CI: ~10× smaller.
    Quick,
}

impl ExperimentScale {
    /// Resolve from `--quick` argv or `CCM_QUICK=1`.
    pub fn from_env() -> ExperimentScale {
        let quick_flag = std::env::args().any(|a| a == "--quick");
        let quick_env = std::env::var("CCM_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
        if quick_flag || quick_env {
            ExperimentScale::Quick
        } else {
            ExperimentScale::Full
        }
    }

    fn apply(self, mut cfg: SimConfig) -> SimConfig {
        match self {
            ExperimentScale::Full => cfg,
            ExperimentScale::Quick => {
                cfg.warmup_requests = 4_000;
                cfg.measure_requests = 6_000;
                cfg.clients_per_node = 16;
                cfg
            }
        }
    }
}

/// The per-node memory sweep of Figure 2 (4–512 MB).
pub fn mem_sweep() -> Vec<u64> {
    vec![4, 8, 16, 32, 64, 128, 256, 512]
        .into_iter()
        .map(|m| m * MB)
        .collect()
}

/// The four server flavors of Figure 2, in plot order.
pub fn paper_servers() -> Vec<ServerKind> {
    vec![
        ServerKind::L2s { handoff: true },
        ServerKind::Ccm(CcmVariant::basic()),
        ServerKind::Ccm(CcmVariant::scheduled()),
        ServerKind::Ccm(CcmVariant::master_preserving()),
    ]
}

/// Caches workloads and runs simulations for one experiment binary.
pub struct Runner {
    scale: ExperimentScale,
    workloads: HashMap<Preset, Arc<Workload>>,
    /// Collected CSV rows (header written separately).
    rows: Vec<String>,
}

impl Runner {
    /// A runner at the scale selected by the environment.
    pub fn from_env() -> Runner {
        Runner::new(ExperimentScale::from_env())
    }

    /// A runner at an explicit scale.
    pub fn new(scale: ExperimentScale) -> Runner {
        Runner {
            scale,
            workloads: HashMap::new(),
            rows: Vec::new(),
        }
    }

    /// The scale in force.
    pub fn scale(&self) -> ExperimentScale {
        self.scale
    }

    /// The (cached) workload for a preset.
    pub fn workload(&mut self, preset: Preset) -> Arc<Workload> {
        self.workloads
            .entry(preset)
            .or_insert_with(|| Arc::new(preset.workload()))
            .clone()
    }

    /// Run one point: `server` on `nodes` nodes with `mem` bytes/node over
    /// `preset`, with optional config tweaks applied first.
    pub fn run_with(
        &mut self,
        preset: Preset,
        server: ServerKind,
        nodes: usize,
        mem: u64,
        tweak: impl FnOnce(&mut SimConfig),
    ) -> RunMetrics {
        let w = self.workload(preset);
        let mut cfg = self.scale.apply(SimConfig::paper(server, nodes, mem));
        tweak(&mut cfg);
        ccm_webserver::run(&cfg, &w)
    }

    /// Run one point with default configuration.
    pub fn run(
        &mut self,
        preset: Preset,
        server: ServerKind,
        nodes: usize,
        mem: u64,
    ) -> RunMetrics {
        self.run_with(preset, server, nodes, mem, |_| {})
    }

    /// Append a CSV data row (prefix columns + the metrics row).
    pub fn record(&mut self, prefix: &str, m: &RunMetrics) {
        self.rows.push(format!("{prefix},{}", m.csv_row()));
    }

    /// Write collected rows to `results/<name>.csv` with the given prefix
    /// header, returning the path.
    pub fn write_csv(&self, name: &str, prefix_header: &str) -> PathBuf {
        let dir = results_dir();
        std::fs::create_dir_all(&dir).expect("create results dir");
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path).expect("create csv");
        writeln!(f, "{prefix_header},{}", RunMetrics::csv_header()).unwrap();
        for r in &self.rows {
            writeln!(f, "{r}").unwrap();
        }
        path
    }
}

/// Where CSVs land: `$CCM_RESULTS_DIR` or `./results`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("CCM_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Fixed-width table printer for experiment stdout.
pub struct Table {
    header: Vec<String>,
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            widths: header.iter().map(|h| h.len()).collect(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    /// Render to stdout.
    pub fn print(&self) {
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", line(&self.header, &self.widths));
        let total: usize = self.widths.iter().sum::<usize>() + 2 * (self.widths.len() - 1);
        println!("{}", "-".repeat(total));
        for r in &self.rows {
            println!("{}", line(r, &self.widths));
        }
    }
}

/// Format requests/second for tables.
pub fn fmt_rps(x: f64) -> String {
    format!("{x:.0}")
}

/// Format a ratio (normalized throughput etc.).
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_the_papers() {
        let s = mem_sweep();
        assert_eq!(s.first(), Some(&(4 * MB)));
        assert_eq!(s.last(), Some(&(512 * MB)));
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn servers_cover_figure_2() {
        let labels: Vec<String> = paper_servers().iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["l2s", "ccm-basic", "ccm-sched", "ccm-mp"]);
    }

    #[test]
    fn table_rendering_does_not_panic() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100000".into(), "x".into()]);
        t.print();
    }

    #[test]
    fn quick_scale_shrinks() {
        let cfg = ExperimentScale::Quick.apply(SimConfig::paper(
            ServerKind::L2s { handoff: true },
            4,
            MB,
        ));
        assert!(cfg.measure_requests <= 10_000);
    }
}
