//! Figure 1: the Rutgers workload's cumulative curves.
//!
//! X axis: files sorted by decreasing request frequency (normalized).
//! Left Y axis: cumulative fraction of requests. Right Y axis: cumulative
//! data-set size. The paper's calibration point: caching 99 % of requests
//! requires ≈ 494 MB.
//!
//! Usage: `cargo run --release -p ccm-bench --bin fig1 [preset]`

use ccm_bench::harness::{results_dir, Table};
use ccm_traces::{Preset, WorkingSetCurve};
use std::io::Write;

fn main() {
    let preset = std::env::args()
        .nth(1)
        .and_then(|s| Preset::from_name(&s))
        .unwrap_or(Preset::Rutgers);
    let w = preset.workload();
    let curve = WorkingSetCurve::compute(&w, 400);

    let mut table = Table::new(&["files (by freq)", "cum. requests", "cum. size (MB)"]);
    for pct in [
        1, 2, 5, 8, 15, 23, 30, 38, 45, 53, 60, 68, 75, 83, 90, 98, 100,
    ] {
        let idx = (pct * curve.points().len() / 100).saturating_sub(1);
        let p = curve.points()[idx];
        table.row(vec![
            format!("{:.0}%", 100.0 * p.file_fraction),
            format!("{:.1}%", 100.0 * p.request_fraction),
            format!("{:.1}", p.cumulative_bytes as f64 / (1 << 20) as f64),
        ]);
    }
    println!("=== Figure 1 ({} workload) ===", preset.name());
    table.print();
    let ws99 = w.working_set_for(0.99);
    println!(
        "\nCaching 99% of requests needs {:.0} MB (paper, Rutgers: ~494 MB).",
        ws99 as f64 / (1 << 20) as f64
    );

    // CSV with the full-resolution curve.
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("fig1_{}.csv", preset.name()));
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "file_fraction,request_fraction,cumulative_bytes").unwrap();
    for p in curve.points() {
        writeln!(
            f,
            "{:.6},{:.6},{}",
            p.file_fraction, p.request_fraction, p.cumulative_bytes
        )
        .unwrap();
    }
    println!("wrote {}", path.display());
}
