//! Runtime transport micro-benchmark: per-block read latency and
//! throughput of the threaded middleware on each read path — local hit,
//! remote hit, cold disk read, and the §3 degrade path (remote miss that
//! falls back to disk) — over both LAN backends: the in-process channel
//! LAN and the real TCP loopback transport (`ccm-net`).
//!
//! Writes `BENCH_rt.json` at the repository root and prints a table.
//!
//! Usage: `cargo run --release -p ccm-bench --bin bench_rt [--quick]`

use ccm_core::{BlockId, FileId, NodeId, ReplacementPolicy, BLOCK_SIZE};
use ccm_net::TcpLan;
use ccm_obs::{Hop, Registry, Stopwatch, TraceRing};
use ccm_rt::store::BlockStore;
use ccm_rt::{
    Catalog, DiskConfig, DiskMechanics, DiskService, FaultPlan, FileStore, LinkFaults, Middleware,
    RtConfig, SchedPolicy, SyntheticStore,
};
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cache capacity per node, in blocks; also the per-phase working set.
const CAPACITY: usize = 1024;

#[derive(Debug, Clone, Copy)]
enum Backend {
    Channel,
    Tcp,
}

impl Backend {
    fn name(self) -> &'static str {
        match self {
            Backend::Channel => "channel",
            Backend::Tcp => "tcp",
        }
    }
}

/// One measured phase: per-op latencies in nanoseconds.
struct Phase {
    scenario: &'static str,
    samples: Vec<u64>,
}

impl Phase {
    fn mean_ns(&self) -> f64 {
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    fn percentile_ns(&self, p: f64) -> u64 {
        let mut s = self.samples.clone();
        s.sort_unstable();
        s[((s.len() - 1) as f64 * p) as usize]
    }

    fn mb_per_s(&self) -> f64 {
        let total_ns = self.samples.iter().sum::<u64>() as f64;
        let bytes = self.samples.len() as f64 * BLOCK_SIZE as f64;
        bytes / (1 << 20) as f64 / (total_ns / 1e9)
    }
}

fn start_cluster(backend: Backend, cfg: RtConfig, catalog: &Catalog) -> Middleware {
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 99));
    match backend {
        Backend::Channel => Middleware::start(cfg, catalog.clone(), store),
        Backend::Tcp => {
            let lan = Arc::new(TcpLan::loopback(cfg.nodes).expect("bind loopback"));
            Middleware::start_on(cfg, catalog.clone(), store, lan)
        }
    }
}

/// Time `node` reading each block once, in order.
fn time_reads(mw: &Middleware, node: NodeId, blocks: &[BlockId], out: &mut Vec<u64>) {
    for &b in blocks {
        let t = Instant::now();
        let data = mw.handle(node).read_block(b);
        let dt = t.elapsed().as_nanos() as u64;
        assert_eq!(data.len(), BLOCK_SIZE as usize);
        out.push(dt);
    }
}

/// Run the four scenarios on one backend. Each scenario gets a fresh
/// cluster so the cache state it measures is exactly the one named.
fn run_backend(backend: Backend, rounds: usize) -> Vec<Phase> {
    // One block per file keeps addressing trivial: block i = file i.
    let catalog = Catalog::new(vec![BLOCK_SIZE; 4 * CAPACITY]);
    let block = |i: usize| BlockId::new(FileId(i as u32), 0);
    let set_a: Vec<BlockId> = (0..CAPACITY).map(block).collect();
    let set_b: Vec<BlockId> = (CAPACITY..2 * CAPACITY).map(block).collect();
    let cfg = |faults: Option<FaultPlan>| RtConfig {
        nodes: 2,
        capacity_blocks: CAPACITY,
        policy: ReplacementPolicy::MasterPreserving,
        fetch_timeout: Duration::from_secs(2),
        faults,
        ..RtConfig::default()
    };
    let reader = NodeId(0);
    let holder = NodeId(1);
    let mut phases = Vec::new();

    // Cold disk reads: nothing cached anywhere, every read faults in from
    // the backing store (and becomes a local master).
    {
        let mw = start_cluster(backend, cfg(None), &catalog);
        let mut samples = Vec::new();
        time_reads(&mw, reader, &set_a, &mut samples);
        assert_eq!(mw.stats().disk_reads, CAPACITY as u64);
        phases.push(Phase {
            scenario: "disk_read",
            samples,
        });
        mw.shutdown();
    }

    // Local hits: prime once, then re-read the resident set.
    {
        let mw = start_cluster(backend, cfg(None), &catalog);
        time_reads(&mw, reader, &set_a, &mut Vec::new()); // prime
        let mut samples = Vec::new();
        for _ in 0..rounds {
            time_reads(&mw, reader, &set_a, &mut samples);
        }
        assert_eq!(mw.stats().local_hits, (rounds * CAPACITY) as u64);
        phases.push(Phase {
            scenario: "local_hit",
            samples,
        });
        mw.shutdown();
    }

    // Remote hits: the peer masters the set, the reader fetches each block
    // over the LAN exactly once (the fetched replicas then sit local, so
    // every sample is a genuine peer round trip).
    {
        let mw = start_cluster(backend, cfg(None), &catalog);
        time_reads(&mw, holder, &set_a, &mut Vec::new()); // peer masters A
        let mut samples = Vec::new();
        time_reads(&mw, reader, &set_a, &mut samples);
        assert_eq!(mw.stats().remote_hits, CAPACITY as u64);
        phases.push(Phase {
            scenario: "remote_hit",
            samples,
        });
        mw.shutdown();
    }

    // Degrade path (§3's "eventual disk read"): the directory points at the
    // peer, but every peer request is dropped on the wire, so each read
    // pays a failed remote attempt plus the disk fallback.
    {
        let all_drop = FaultPlan {
            seed: 1,
            link: LinkFaults {
                drop_prob: 1.0,
                dup_prob: 0.0,
                delay_prob: 0.0,
                delay_sends: 0,
            },
            crashes: Vec::new(),
            disk: Default::default(),
        };
        let mw = start_cluster(backend, cfg(Some(all_drop)), &catalog);
        time_reads(&mw, holder, &set_b, &mut Vec::new()); // peer masters B
        let mut samples = Vec::new();
        time_reads(&mw, reader, &set_b, &mut samples);
        assert_eq!(mw.store_fallbacks(), CAPACITY as u64);
        phases.push(Phase {
            scenario: "remote_miss_fallback",
            samples,
        });
        mw.shutdown();
    }

    phases
}

/// The disk-subsystem section of the report, exercising `ccm-disk`'s
/// service directly (no middleware in the loop):
///
/// * **interleaved streams** — several client threads each scan one file
///   sequentially with a small async window, so the shared request queue
///   sees the paper's worst case: perfectly interleaved sequential streams.
///   Seek mechanics are emulated (`DiskMechanics`), so FIFO pays a seek on
///   nearly every request while the batched (CcmSched-style) scheduler
///   keeps each stream's run contiguous — fewer seeks *and* more MB/s.
/// * **coalescing** — many clients demand the same blocks concurrently;
///   with coalescing on, each block costs one physical read.
/// * **store backends** — a sequential scan through the service over the
///   synthetic store vs. the real file-backed store.
fn disk_section(quick: bool) -> String {
    // --- interleaved sequential streams: FIFO vs batched ------------------
    let streams = 8usize;
    let blocks_per_file = if quick { 16u32 } else { 64 };
    let catalog = Catalog::new(vec![BLOCK_SIZE * blocks_per_file as u64; streams]);
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 7));
    let mech = DiskMechanics {
        seek: Duration::from_micros(150),
        read_latency: Duration::from_micros(20),
    };
    let run_streams = |policy: SchedPolicy| {
        let svc = Arc::new(DiskService::start(
            store.clone(),
            catalog.clone(),
            DiskConfig {
                scheduler: policy,
                readahead: 0, // same physical reads under both policies
                mechanics: Some(mech),
                ..DiskConfig::default()
            },
        ));
        let t = Instant::now();
        let clients: Vec<_> = (0..streams)
            .map(|f| {
                let svc = svc.clone();
                std::thread::spawn(move || {
                    let mut window = std::collections::VecDeque::new();
                    for i in 0..blocks_per_file {
                        window.push_back(svc.read_async(BlockId::new(FileId(f as u32), i)));
                        if window.len() >= 4 {
                            window.pop_front().unwrap().recv().unwrap().unwrap();
                        }
                    }
                    for rx in window {
                        rx.recv().unwrap().unwrap();
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        let secs = t.elapsed().as_secs_f64();
        let stats = svc.stats();
        let mb = (streams as u64 * blocks_per_file as u64 * BLOCK_SIZE) as f64 / (1 << 20) as f64;
        (stats.seeks, secs * 1e3, mb / secs)
    };
    let (fifo_seeks, fifo_ms, fifo_mbs) = run_streams(SchedPolicy::Fifo);
    let (bat_seeks, bat_ms, bat_mbs) = run_streams(SchedPolicy::Batched);
    assert!(
        bat_seeks < fifo_seeks,
        "batched must out-schedule FIFO on interleaved streams ({bat_seeks} vs {fifo_seeks} seeks)"
    );
    println!(
        "\ndisk: {streams} interleaved streams x {blocks_per_file} blocks: \
         fifo {fifo_seeks} seeks {fifo_ms:.1} ms ({fifo_mbs:.1} MB/s), \
         batched {bat_seeks} seeks {bat_ms:.1} ms ({bat_mbs:.1} MB/s)"
    );

    // --- miss coalescing: many clients, same blocks -----------------------
    let co_blocks = if quick { 8u32 } else { 32 };
    let clients = 8usize;
    let run_coalesce = |coalesce: bool| {
        let svc = Arc::new(DiskService::start(
            store.clone(),
            catalog.clone(),
            DiskConfig {
                coalesce,
                readahead: 0,
                mechanics: Some(DiskMechanics {
                    seek: Duration::ZERO,
                    read_latency: Duration::from_micros(100),
                }),
                ..DiskConfig::default()
            },
        ));
        let t = Instant::now();
        for i in 0..co_blocks {
            let b = BlockId::new(FileId(0), i);
            let waiting: Vec<_> = (0..clients).map(|_| svc.read_async(b)).collect();
            for rx in waiting {
                rx.recv().unwrap().unwrap();
            }
        }
        (
            svc.stats().physical_demand_reads,
            t.elapsed().as_secs_f64() * 1e3,
        )
    };
    let (on_reads, on_ms) = run_coalesce(true);
    let (off_reads, off_ms) = run_coalesce(false);
    assert_eq!(on_reads, co_blocks as u64, "coalescing: one read per block");
    println!(
        "disk: coalescing {clients} clients x {co_blocks} blocks: \
         on {on_reads} physical reads {on_ms:.1} ms, off {off_reads} reads {off_ms:.1} ms"
    );

    // --- synthetic vs file-backed store -----------------------------------
    let scan = |store: Arc<dyn BlockStore>| {
        let svc = DiskService::start(store, catalog.clone(), DiskConfig::default());
        let t = Instant::now();
        let mut n = 0u64;
        for f in 0..streams {
            for i in 0..blocks_per_file {
                svc.read(BlockId::new(FileId(f as u32), i)).unwrap();
                n += 1;
            }
        }
        t.elapsed().as_nanos() as f64 / n as f64
    };
    let synth_ns = scan(store.clone());
    let dir = std::env::temp_dir().join(format!("ccm-bench-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fs = FileStore::create(&dir, &catalog, &*store).expect("create file store");
    let file_ns = scan(Arc::new(fs));
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "disk: sequential scan: synthetic {synth_ns:.0} ns/blk, file-backed {file_ns:.0} ns/blk"
    );

    format!(
        "  \"disk\": {{\n    \"interleaved_streams\": {{ \"streams\": {streams}, \"blocks_per_stream\": {blocks_per_file}, \
\"fifo\": {{ \"seeks\": {fifo_seeks}, \"ms\": {fifo_ms:.1}, \"mb_per_s\": {fifo_mbs:.2} }}, \
\"batched\": {{ \"seeks\": {bat_seeks}, \"ms\": {bat_ms:.1}, \"mb_per_s\": {bat_mbs:.2} }} }},\n    \
\"coalescing\": {{ \"clients\": {clients}, \"blocks\": {co_blocks}, \
\"on\": {{ \"physical_reads\": {on_reads}, \"ms\": {on_ms:.1} }}, \
\"off\": {{ \"physical_reads\": {off_reads}, \"ms\": {off_ms:.1} }} }},\n    \
\"store\": {{ \"synthetic_ns_per_block\": {synth_ns:.0}, \"file_ns_per_block\": {file_ns:.0} }}\n  }},\n"
    )
}

/// The observability section of the report: the per-event cost of the
/// instrumentation primitives, an instrumented all-local-hit read for
/// scale, and the registry's protocol counters from that run. Running the
/// bench twice — default and `--features obs-off` — and diffing the two
/// reports' `local_hit_instrumented` values is the recorded overhead
/// delta (`obs_off` says which build produced the file).
fn obs_section(rounds: usize) -> String {
    let catalog = Catalog::new(vec![BLOCK_SIZE; CAPACITY]);
    let block = |i: usize| BlockId::new(FileId(i as u32), 0);
    let blocks: Vec<BlockId> = (0..CAPACITY).map(block).collect();
    let registry = Registry::new();
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 99));
    let mw = Middleware::start(
        RtConfig {
            nodes: 2,
            capacity_blocks: CAPACITY,
            policy: ReplacementPolicy::MasterPreserving,
            fetch_timeout: Duration::from_secs(2),
            faults: None,
            obs: Some(registry.clone()),
            ..RtConfig::default()
        },
        catalog,
        store,
    );
    let reader = NodeId(0);
    time_reads(&mw, reader, &blocks, &mut Vec::new()); // prime
    let mut samples = Vec::new();
    for _ in 0..rounds {
        time_reads(&mw, reader, &blocks, &mut samples);
    }
    let read_ns = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
    mw.quiesce();
    let snap = mw.obs_snapshot();
    mw.shutdown();

    // Per-event primitive costs, same loops as the ccm-rt overhead guard.
    const ITERS: usize = 200_000;
    let c = registry.counter("bench_obs_probe_total", "probe", &[]);
    let h = registry.histogram("bench_obs_probe_ns", "probe", &[]);
    let t = Instant::now();
    for _ in 0..ITERS {
        let sw = Stopwatch::start();
        c.inc();
        sw.stop(&h);
    }
    let metric_ns = t.elapsed().as_nanos() as f64 / ITERS as f64;
    let ring = TraceRing::new(4096);
    let t = Instant::now();
    for i in 0..ITERS {
        let req = ring.next_req_id();
        ring.push(
            req,
            0,
            Hop::Dispatch {
                file: i as u32,
                block: 0,
            },
        );
        ring.push(req, 0, Hop::Serve { bytes: 8192 });
    }
    let trace_ns = t.elapsed().as_nanos() as f64 / ITERS as f64;

    println!(
        "\nobs: local-hit (instrumented) {read_ns:.0} ns/blk; per event: metrics {metric_ns:.0} ns, \
         tracing {trace_ns:.0} ns (obs-off={})",
        cfg!(feature = "obs-off"),
    );
    format!(
        "  \"obs\": {{ \"obs_off\": {}, \"local_hit_instrumented_ns\": {:.1}, \
         \"metric_event_ns\": {:.1}, \"trace_event_ns\": {:.1}, \
         \"reads_total\": {}, \"evictions_total\": {}, \"store_fallbacks_total\": {} }}\n",
        cfg!(feature = "obs-off"),
        read_ns,
        metric_ns,
        trace_ns,
        snap.counter_sum("ccm_rt_reads_total"),
        snap.counter_sum("ccm_rt_evictions_total"),
        snap.counter_sum("ccm_rt_store_fallbacks_total"),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("CCM_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let rounds = if quick { 2 } else { 16 };

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"bench_rt\",\n");
    json.push_str(&format!("  \"block_size\": {BLOCK_SIZE},\n"));
    json.push_str(&format!("  \"capacity_blocks\": {CAPACITY},\n"));
    json.push_str("  \"nodes\": 2,\n");
    json.push_str("  \"backends\": {\n");

    println!(
        "{:<8} {:<22} {:>9} {:>12} {:>10} {:>10} {:>10}",
        "backend", "scenario", "samples", "mean ns/blk", "p50 ns", "p99 ns", "MB/s"
    );
    for (bi, backend) in [Backend::Channel, Backend::Tcp].into_iter().enumerate() {
        let phases = run_backend(backend, rounds);
        json.push_str(&format!("    \"{}\": {{\n", backend.name()));
        for (pi, ph) in phases.iter().enumerate() {
            println!(
                "{:<8} {:<22} {:>9} {:>12.0} {:>10} {:>10} {:>10.1}",
                backend.name(),
                ph.scenario,
                ph.samples.len(),
                ph.mean_ns(),
                ph.percentile_ns(0.50),
                ph.percentile_ns(0.99),
                ph.mb_per_s(),
            );
            json.push_str(&format!(
                "      \"{}\": {{ \"samples\": {}, \"ns_per_block_mean\": {:.1}, \"ns_p50\": {}, \"ns_p99\": {}, \"mb_per_s\": {:.2} }}{}\n",
                ph.scenario,
                ph.samples.len(),
                ph.mean_ns(),
                ph.percentile_ns(0.50),
                ph.percentile_ns(0.99),
                ph.mb_per_s(),
                if pi + 1 < phases.len() { "," } else { "" },
            ));
        }
        json.push_str(&format!("    }}{}\n", if bi == 0 { "," } else { "" }));
    }
    json.push_str("  },\n");
    json.push_str(&disk_section(quick));
    json.push_str(&obs_section(rounds));
    json.push_str("}\n");

    // Repo root, next to Cargo.toml (crates/bench/../..).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_rt.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_rt.json");
    f.write_all(json.as_bytes()).expect("write BENCH_rt.json");
    println!("\nwrote {path}");
}
