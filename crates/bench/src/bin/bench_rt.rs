//! Runtime transport micro-benchmark: per-block read latency and
//! throughput of the threaded middleware on each read path — local hit,
//! remote hit, cold disk read, and the §3 degrade path (remote miss that
//! falls back to disk) — over both LAN backends: the in-process channel
//! LAN and the real TCP loopback transport (`ccm-net`).
//!
//! Writes `BENCH_rt.json` at the repository root and prints a table.
//!
//! Usage: `cargo run --release -p ccm-bench --bin bench_rt [--quick]`

use ccm_core::{BlockId, FileId, NodeId, ReplacementPolicy, BLOCK_SIZE};
use ccm_net::TcpLan;
use ccm_obs::{Hop, Registry, Stopwatch, TraceRing};
use ccm_rt::{Catalog, FaultPlan, LinkFaults, Middleware, RtConfig, SyntheticStore};
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cache capacity per node, in blocks; also the per-phase working set.
const CAPACITY: usize = 1024;

#[derive(Debug, Clone, Copy)]
enum Backend {
    Channel,
    Tcp,
}

impl Backend {
    fn name(self) -> &'static str {
        match self {
            Backend::Channel => "channel",
            Backend::Tcp => "tcp",
        }
    }
}

/// One measured phase: per-op latencies in nanoseconds.
struct Phase {
    scenario: &'static str,
    samples: Vec<u64>,
}

impl Phase {
    fn mean_ns(&self) -> f64 {
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    fn percentile_ns(&self, p: f64) -> u64 {
        let mut s = self.samples.clone();
        s.sort_unstable();
        s[((s.len() - 1) as f64 * p) as usize]
    }

    fn mb_per_s(&self) -> f64 {
        let total_ns = self.samples.iter().sum::<u64>() as f64;
        let bytes = self.samples.len() as f64 * BLOCK_SIZE as f64;
        bytes / (1 << 20) as f64 / (total_ns / 1e9)
    }
}

fn start_cluster(backend: Backend, cfg: RtConfig, catalog: &Catalog) -> Middleware {
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 99));
    match backend {
        Backend::Channel => Middleware::start(cfg, catalog.clone(), store),
        Backend::Tcp => {
            let lan = Arc::new(TcpLan::loopback(cfg.nodes).expect("bind loopback"));
            Middleware::start_on(cfg, catalog.clone(), store, lan)
        }
    }
}

/// Time `node` reading each block once, in order.
fn time_reads(mw: &Middleware, node: NodeId, blocks: &[BlockId], out: &mut Vec<u64>) {
    for &b in blocks {
        let t = Instant::now();
        let data = mw.handle(node).read_block(b);
        let dt = t.elapsed().as_nanos() as u64;
        assert_eq!(data.len(), BLOCK_SIZE as usize);
        out.push(dt);
    }
}

/// Run the four scenarios on one backend. Each scenario gets a fresh
/// cluster so the cache state it measures is exactly the one named.
fn run_backend(backend: Backend, rounds: usize) -> Vec<Phase> {
    // One block per file keeps addressing trivial: block i = file i.
    let catalog = Catalog::new(vec![BLOCK_SIZE; 4 * CAPACITY]);
    let block = |i: usize| BlockId::new(FileId(i as u32), 0);
    let set_a: Vec<BlockId> = (0..CAPACITY).map(block).collect();
    let set_b: Vec<BlockId> = (CAPACITY..2 * CAPACITY).map(block).collect();
    let cfg = |faults: Option<FaultPlan>| RtConfig {
        nodes: 2,
        capacity_blocks: CAPACITY,
        policy: ReplacementPolicy::MasterPreserving,
        fetch_timeout: Duration::from_secs(2),
        faults,
        obs: None,
    };
    let reader = NodeId(0);
    let holder = NodeId(1);
    let mut phases = Vec::new();

    // Cold disk reads: nothing cached anywhere, every read faults in from
    // the backing store (and becomes a local master).
    {
        let mw = start_cluster(backend, cfg(None), &catalog);
        let mut samples = Vec::new();
        time_reads(&mw, reader, &set_a, &mut samples);
        assert_eq!(mw.stats().disk_reads, CAPACITY as u64);
        phases.push(Phase {
            scenario: "disk_read",
            samples,
        });
        mw.shutdown();
    }

    // Local hits: prime once, then re-read the resident set.
    {
        let mw = start_cluster(backend, cfg(None), &catalog);
        time_reads(&mw, reader, &set_a, &mut Vec::new()); // prime
        let mut samples = Vec::new();
        for _ in 0..rounds {
            time_reads(&mw, reader, &set_a, &mut samples);
        }
        assert_eq!(mw.stats().local_hits, (rounds * CAPACITY) as u64);
        phases.push(Phase {
            scenario: "local_hit",
            samples,
        });
        mw.shutdown();
    }

    // Remote hits: the peer masters the set, the reader fetches each block
    // over the LAN exactly once (the fetched replicas then sit local, so
    // every sample is a genuine peer round trip).
    {
        let mw = start_cluster(backend, cfg(None), &catalog);
        time_reads(&mw, holder, &set_a, &mut Vec::new()); // peer masters A
        let mut samples = Vec::new();
        time_reads(&mw, reader, &set_a, &mut samples);
        assert_eq!(mw.stats().remote_hits, CAPACITY as u64);
        phases.push(Phase {
            scenario: "remote_hit",
            samples,
        });
        mw.shutdown();
    }

    // Degrade path (§3's "eventual disk read"): the directory points at the
    // peer, but every peer request is dropped on the wire, so each read
    // pays a failed remote attempt plus the disk fallback.
    {
        let all_drop = FaultPlan {
            seed: 1,
            link: LinkFaults {
                drop_prob: 1.0,
                dup_prob: 0.0,
                delay_prob: 0.0,
                delay_sends: 0,
            },
            crashes: Vec::new(),
        };
        let mw = start_cluster(backend, cfg(Some(all_drop)), &catalog);
        time_reads(&mw, holder, &set_b, &mut Vec::new()); // peer masters B
        let mut samples = Vec::new();
        time_reads(&mw, reader, &set_b, &mut samples);
        assert_eq!(mw.store_fallbacks(), CAPACITY as u64);
        phases.push(Phase {
            scenario: "remote_miss_fallback",
            samples,
        });
        mw.shutdown();
    }

    phases
}

/// The observability section of the report: the per-event cost of the
/// instrumentation primitives, an instrumented all-local-hit read for
/// scale, and the registry's protocol counters from that run. Running the
/// bench twice — default and `--features obs-off` — and diffing the two
/// reports' `local_hit_instrumented` values is the recorded overhead
/// delta (`obs_off` says which build produced the file).
fn obs_section(rounds: usize) -> String {
    let catalog = Catalog::new(vec![BLOCK_SIZE; CAPACITY]);
    let block = |i: usize| BlockId::new(FileId(i as u32), 0);
    let blocks: Vec<BlockId> = (0..CAPACITY).map(block).collect();
    let registry = Registry::new();
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 99));
    let mw = Middleware::start(
        RtConfig {
            nodes: 2,
            capacity_blocks: CAPACITY,
            policy: ReplacementPolicy::MasterPreserving,
            fetch_timeout: Duration::from_secs(2),
            faults: None,
            obs: Some(registry.clone()),
        },
        catalog,
        store,
    );
    let reader = NodeId(0);
    time_reads(&mw, reader, &blocks, &mut Vec::new()); // prime
    let mut samples = Vec::new();
    for _ in 0..rounds {
        time_reads(&mw, reader, &blocks, &mut samples);
    }
    let read_ns = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
    mw.quiesce();
    let snap = mw.obs_snapshot();
    mw.shutdown();

    // Per-event primitive costs, same loops as the ccm-rt overhead guard.
    const ITERS: usize = 200_000;
    let c = registry.counter("bench_obs_probe_total", "probe", &[]);
    let h = registry.histogram("bench_obs_probe_ns", "probe", &[]);
    let t = Instant::now();
    for _ in 0..ITERS {
        let sw = Stopwatch::start();
        c.inc();
        sw.stop(&h);
    }
    let metric_ns = t.elapsed().as_nanos() as f64 / ITERS as f64;
    let ring = TraceRing::new(4096);
    let t = Instant::now();
    for i in 0..ITERS {
        let req = ring.next_req_id();
        ring.push(
            req,
            0,
            Hop::Dispatch {
                file: i as u32,
                block: 0,
            },
        );
        ring.push(req, 0, Hop::Serve { bytes: 8192 });
    }
    let trace_ns = t.elapsed().as_nanos() as f64 / ITERS as f64;

    println!(
        "\nobs: local-hit (instrumented) {read_ns:.0} ns/blk; per event: metrics {metric_ns:.0} ns, \
         tracing {trace_ns:.0} ns (obs-off={})",
        cfg!(feature = "obs-off"),
    );
    format!(
        "  \"obs\": {{ \"obs_off\": {}, \"local_hit_instrumented_ns\": {:.1}, \
         \"metric_event_ns\": {:.1}, \"trace_event_ns\": {:.1}, \
         \"reads_total\": {}, \"evictions_total\": {}, \"store_fallbacks_total\": {} }}\n",
        cfg!(feature = "obs-off"),
        read_ns,
        metric_ns,
        trace_ns,
        snap.counter_sum("ccm_rt_reads_total"),
        snap.counter_sum("ccm_rt_evictions_total"),
        snap.counter_sum("ccm_rt_store_fallbacks_total"),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("CCM_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let rounds = if quick { 2 } else { 16 };

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"bench_rt\",\n");
    json.push_str(&format!("  \"block_size\": {BLOCK_SIZE},\n"));
    json.push_str(&format!("  \"capacity_blocks\": {CAPACITY},\n"));
    json.push_str("  \"nodes\": 2,\n");
    json.push_str("  \"backends\": {\n");

    println!(
        "{:<8} {:<22} {:>9} {:>12} {:>10} {:>10} {:>10}",
        "backend", "scenario", "samples", "mean ns/blk", "p50 ns", "p99 ns", "MB/s"
    );
    for (bi, backend) in [Backend::Channel, Backend::Tcp].into_iter().enumerate() {
        let phases = run_backend(backend, rounds);
        json.push_str(&format!("    \"{}\": {{\n", backend.name()));
        for (pi, ph) in phases.iter().enumerate() {
            println!(
                "{:<8} {:<22} {:>9} {:>12.0} {:>10} {:>10} {:>10.1}",
                backend.name(),
                ph.scenario,
                ph.samples.len(),
                ph.mean_ns(),
                ph.percentile_ns(0.50),
                ph.percentile_ns(0.99),
                ph.mb_per_s(),
            );
            json.push_str(&format!(
                "      \"{}\": {{ \"samples\": {}, \"ns_per_block_mean\": {:.1}, \"ns_p50\": {}, \"ns_p99\": {}, \"mb_per_s\": {:.2} }}{}\n",
                ph.scenario,
                ph.samples.len(),
                ph.mean_ns(),
                ph.percentile_ns(0.50),
                ph.percentile_ns(0.99),
                ph.mb_per_s(),
                if pi + 1 < phases.len() { "," } else { "" },
            ));
        }
        json.push_str(&format!("    }}{}\n", if bi == 0 { "," } else { "" }));
    }
    json.push_str("  },\n");
    json.push_str(&obs_section(rounds));
    json.push_str("}\n");

    // Repo root, next to Cargo.toml (crates/bench/../..).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_rt.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_rt.json");
    f.write_all(json.as_bytes()).expect("write BENCH_rt.json");
    println!("\nwrote {path}");
}
