//! Extension X2 (paper §6): whole-file adaptation of the middleware.
//!
//! "We will investigate whether [the layer] can easily be adapted for
//! servers that always use whole files (e.g., a web server) and whether such
//! an adaptation would improve performance." Here the adaptation launches
//! every block fetch of a request at once instead of streaming extents
//! sequentially — trading burstier resource usage for lower response time.
//!
//! Usage: `cargo run --release -p ccm-bench --bin ext_wholefile [--quick]`

use ccm_bench::harness::{mem_sweep, Runner, Table, MB};
use ccm_traces::Preset;
use ccm_webserver::{CcmVariant, ServerKind};

fn main() {
    let mut runner = Runner::from_env();
    let preset = Preset::Rutgers;
    let nodes = 8;

    let mut table = Table::new(&[
        "mem/node",
        "block rps",
        "wholefile rps",
        "block mean ms",
        "wholefile mean ms",
    ]);
    for mem in mem_sweep() {
        let block = runner.run(
            preset,
            ServerKind::Ccm(CcmVariant::master_preserving()),
            nodes,
            mem,
        );
        runner.record(&format!("{},{},{}", preset.name(), nodes, mem / MB), &block);
        let mut v = CcmVariant::master_preserving();
        v.whole_file = true;
        let whole = runner.run(preset, ServerKind::Ccm(v), nodes, mem);
        runner.record(&format!("{},{},{}", preset.name(), nodes, mem / MB), &whole);
        table.row(vec![
            format!("{}MB", mem / MB),
            format!("{:.0}", block.throughput_rps),
            format!("{:.0}", whole.throughput_rps),
            format!("{:.2}", block.mean_response_ms),
            format!("{:.2}", whole.mean_response_ms),
        ]);
    }
    println!(
        "=== Extension: whole-file adaptation ({}, {} nodes) ===",
        preset.name(),
        nodes
    );
    table.print();
    let path = runner.write_csv("ext_wholefile", "trace,nodes,mem_mb");
    println!("\nwrote {}", path.display());
}
