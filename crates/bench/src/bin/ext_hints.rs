//! Extension X1 (paper §6): hint-based directory vs the perfect directory.
//!
//! The paper's results assume a perfect, free global directory and argue
//! (citing Sarkar & Hartman's ~98 % hint accuracy) that a practical hint
//! scheme would cost little. This experiment removes the optimistic
//! assumption: each node keeps a private hint map corrected on use and by
//! piggybacked exchange; a stale hint costs one wasted network round trip.
//!
//! Usage: `cargo run --release -p ccm-bench --bin ext_hints [--quick]`

use ccm_bench::harness::{fmt_pct, mem_sweep, Runner, Table, MB};
use ccm_core::DirectoryKind;
use ccm_traces::Preset;
use ccm_webserver::{CcmVariant, ServerKind};

fn main() {
    let mut runner = Runner::from_env();
    let preset = Preset::Rutgers;
    let nodes = 8;

    let mut table = Table::new(&[
        "mem/node",
        "perfect rps",
        "hints rps",
        "hints/perfect",
        "hint accuracy",
    ]);
    for mem in mem_sweep() {
        let perfect = runner.run(
            preset,
            ServerKind::Ccm(CcmVariant::master_preserving()),
            nodes,
            mem,
        );
        runner.record(
            &format!("{},{},{}", preset.name(), nodes, mem / MB),
            &perfect,
        );
        let mut v = CcmVariant::master_preserving();
        v.directory = DirectoryKind::Hint;
        let hints = runner.run(preset, ServerKind::Ccm(v), nodes, mem);
        runner.record(&format!("{},{},{}", preset.name(), nodes, mem / MB), &hints);
        table.row(vec![
            format!("{}MB", mem / MB),
            format!("{:.0}", perfect.throughput_rps),
            format!("{:.0}", hints.throughput_rps),
            format!("{:.3}", hints.throughput_rps / perfect.throughput_rps),
            fmt_pct(hints.hint_accuracy),
        ]);
    }
    println!(
        "=== Extension: hint-based directory ({}, {} nodes) ===",
        preset.name(),
        nodes
    );
    table.print();
    println!("\n(Sarkar & Hartman report ~98% accuracy; the paper expects the");
    println!("hint scheme to preserve most of the perfect-directory results.)");
    let path = runner.write_csv("ext_hints", "trace,nodes,mem_mb");
    println!("wrote {}", path.display());
}
