//! Table 1: the simulation parameters.
//!
//! Prints the cost model in the paper's format. The values are the
//! reconstruction documented in DESIGN.md (the OCR of the paper drops
//! decimals); unit tests in `ccm-cluster::costs` pin them.
//!
//! Usage: `cargo run -p ccm-bench --bin table1`

use ccm_cluster::CostModel;

fn main() {
    let costs = CostModel::default();
    println!("=== Table 1: simulation parameters ===");
    println!("{:<34} Time", "Event");
    println!("{}", "-".repeat(60));
    for (event, time) in costs.table1_rows() {
        println!("{event:<34} {time}");
    }
    println!();
    println!(
        "Modeled hardware: VIA Gb/s LAN ({} MB/s NIC), 800 MHz PIII,",
        costs.nic_bytes_per_ms / 1000.0
    );
    println!(
        "IBM Deskstar 75GXP ({} MB/s media, {} ms avg seek), PC133 bus,",
        costs.disk_bytes_per_ms / 1000.0,
        costs.disk_seek_ms
    );
    println!(
        "Cisco 7600-class router ({} us/request).",
        costs.router_ms * 1000.0
    );
}
