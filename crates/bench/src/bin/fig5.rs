//! Figure 5: average response time normalized against L2S.
//!
//! Panels as in Figure 3: Calgary on 4 nodes, Rutgers on 8 nodes. Paper
//! shape: ccm-mp's average response time is ~5–10 % worse than L2S where
//! both are memory-resident (the extra network round trips), and the wall
//! clock values stay in the low milliseconds.
//!
//! Usage: `cargo run --release -p ccm-bench --bin fig5 [--quick]`

use ccm_bench::harness::{fmt_ratio, mem_sweep, paper_servers, Runner, Table, MB};
use ccm_traces::Preset;
use ccm_webserver::ServerKind;

fn main() {
    let mut runner = Runner::from_env();
    for (preset, nodes) in [(Preset::Calgary, 4usize), (Preset::Rutgers, 8)] {
        let mut table = Table::new(&[
            "mem/node",
            "l2s (ms)",
            "basic/l2s",
            "sched/l2s",
            "mp/l2s",
            "mp (ms)",
        ]);
        for mem in mem_sweep() {
            let mut l2s_ms = 0.0;
            let mut ratios = Vec::new();
            let mut mp_ms = 0.0;
            for server in paper_servers() {
                let m = runner.run(preset, server, nodes, mem);
                runner.record(&format!("{},{},{}", preset.name(), nodes, mem / MB), &m);
                if matches!(server, ServerKind::L2s { .. }) {
                    l2s_ms = m.mean_response_ms;
                } else {
                    ratios.push(m.mean_response_ms / l2s_ms);
                    if m.label == "ccm-mp" {
                        mp_ms = m.mean_response_ms;
                    }
                }
            }
            table.row(vec![
                format!("{}MB", mem / MB),
                format!("{l2s_ms:.2}"),
                fmt_ratio(ratios[0]),
                fmt_ratio(ratios[1]),
                fmt_ratio(ratios[2]),
                format!("{mp_ms:.2}"),
            ]);
        }
        println!(
            "\n=== Figure 5 ({}, {} nodes): mean response time normalized to L2S ===",
            preset.name(),
            nodes
        );
        table.print();
    }
    let path = runner.write_csv("fig5", "trace,nodes,mem_mb");
    println!("\nwrote {}", path.display());
}
