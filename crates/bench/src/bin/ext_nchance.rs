//! Extension X6: the classic N-chance baseline.
//!
//! The paper's algorithm descends from client-side cooperative caching
//! (Dahlin et al.'s N-chance forwarding, OSDI '94), which bounds how many
//! times an unreferenced singlet is forwarded. The paper argues server
//! workloads need *stronger* master retention, not weaker; this experiment
//! quantifies that by running N-chance (N = 1, 2) between unlimited
//! global-LRU forwarding (-Basic with the disk fix) and master-preserving.
//!
//! Usage: `cargo run --release -p ccm-bench --bin ext_nchance [--quick]`

use ccm_bench::harness::{fmt_pct, Runner, Table, MB};
use ccm_core::ReplacementPolicy;
use ccm_traces::Preset;
use ccm_webserver::{CcmVariant, ServerKind};

fn main() {
    let mut runner = Runner::from_env();
    let preset = Preset::Rutgers;
    let nodes = 8;

    let policies = [
        ("n-chance-1", ReplacementPolicy::NChance { chances: 1 }),
        ("n-chance-2", ReplacementPolicy::NChance { chances: 2 }),
        ("global-lru", ReplacementPolicy::GlobalLru),
        ("master-pres", ReplacementPolicy::MasterPreserving),
    ];

    let mut table = Table::new(&[
        "mem/node",
        "n-chance-1",
        "n-chance-2",
        "global-lru",
        "master-pres",
        "mp hit",
    ]);
    for mem in [8 * MB, 16 * MB, 32 * MB, 64 * MB, 128 * MB] {
        let mut rps = Vec::new();
        let mut mp_hit = 0.0;
        for &(name, policy) in &policies {
            let mut v = CcmVariant::master_preserving();
            v.policy = policy;
            let m = runner.run(preset, ServerKind::Ccm(v), nodes, mem);
            runner.record(
                &format!("{},{},{},{}", preset.name(), nodes, mem / MB, name),
                &m,
            );
            if policy == ReplacementPolicy::MasterPreserving {
                mp_hit = m.total_hit_rate();
            }
            rps.push(m.throughput_rps);
        }
        table.row(vec![
            format!("{}MB", mem / MB),
            format!("{:.0}", rps[0]),
            format!("{:.0}", rps[1]),
            format!("{:.0}", rps[2]),
            format!("{:.0}", rps[3]),
            fmt_pct(mp_hit),
        ]);
    }
    println!(
        "=== Extension: replacement policies, disk fix held constant ({}, {} nodes) ===",
        preset.name(),
        nodes
    );
    table.print();
    println!("\n(Expected ordering: limited forwarding <= unlimited forwarding");
    println!("<= master-preserving — the paper's point that server-side");
    println!("cooperative caching wants stronger, not weaker, master retention.)");
    let path = runner.write_csv("ext_nchance", "trace,nodes,mem_mb,policy");
    println!("wrote {}", path.display());
}
