//! Table 2: characteristics of the WWW workloads.
//!
//! Prints the Table 2 columns (files, average file size, average request
//! size, file-set size) for the four synthetic presets standing in for the
//! Calgary / ClarkNet / NASA / Rutgers traces.
//!
//! Usage: `cargo run --release -p ccm-bench --bin table2`

use ccm_traces::{Preset, TraceStats};

fn main() {
    println!("=== Table 2: characteristics of the workloads ===");
    println!("{}", TraceStats::header());
    println!("{}", "-".repeat(64));
    for preset in Preset::all() {
        let stats = TraceStats::of(&preset.workload());
        println!("{}", stats.row());
    }
    println!();
    println!("(Synthetic stand-ins calibrated per DESIGN.md; the request");
    println!("columns of the paper's Table 2 are closed-loop here, §4.3.)");
}
