//! Extension X10: replica promotion on master drop.
//!
//! In the paper's protocol, when a globally-oldest master is dropped, the
//! block leaves cluster memory even if replicas of it survive elsewhere —
//! the directory only tracks masters, so the next access is a disk read.
//! This extension promotes a surviving replica to master instead (possible
//! because the orchestrator tracks replica holders), plugging that leak.
//!
//! Expectation: a real but modest gain for the global-LRU policy (which
//! drops masters constantly) and almost none for master-preserving (which
//! rarely drops a master that still has replicas).
//!
//! Usage: `cargo run --release -p ccm-bench --bin ext_promote [--quick]`

use ccm_bench::harness::{Runner, Table, MB};
use ccm_core::ReplacementPolicy;
use ccm_traces::Preset;
use ccm_webserver::{CcmVariant, ServerKind};

fn main() {
    let mut runner = Runner::from_env();
    let preset = Preset::Rutgers;
    let nodes = 8;

    let mut table = Table::new(&[
        "mem/node",
        "lru",
        "lru+promote",
        "gain",
        "mp",
        "mp+promote",
        "gain",
    ]);
    for mem in [16 * MB, 32 * MB, 64 * MB, 128 * MB] {
        let mut cells = vec![format!("{}MB", mem / MB)];
        for policy in [
            ReplacementPolicy::GlobalLru,
            ReplacementPolicy::MasterPreserving,
        ] {
            let mut base_v = CcmVariant::master_preserving();
            base_v.policy = policy;
            let base = runner.run(preset, ServerKind::Ccm(base_v), nodes, mem);
            runner.record(
                &format!(
                    "{},{},{},{},off",
                    preset.name(),
                    nodes,
                    mem / MB,
                    policy.label()
                ),
                &base,
            );
            let mut promo_v = base_v;
            promo_v.promote_on_master_drop = true;
            let promo = runner.run(preset, ServerKind::Ccm(promo_v), nodes, mem);
            runner.record(
                &format!(
                    "{},{},{},{},on",
                    preset.name(),
                    nodes,
                    mem / MB,
                    policy.label()
                ),
                &promo,
            );
            cells.push(format!("{:.0}", base.throughput_rps));
            cells.push(format!("{:.0}", promo.throughput_rps));
            cells.push(format!(
                "{:+.1}%",
                100.0 * (promo.throughput_rps / base.throughput_rps - 1.0)
            ));
        }
        table.row(cells);
    }
    println!(
        "=== Extension: replica promotion on master drop ({}, {} nodes) ===",
        preset.name(),
        nodes
    );
    table.print();
    let path = runner.write_csv("ext_promote", "trace,nodes,mem_mb,policy,promote");
    println!("\nwrote {}", path.display());
}
