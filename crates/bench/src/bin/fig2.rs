//! Figure 2: throughput for L2S and the three CCM variants on 8 nodes,
//! per-node memory swept 4–512 MB, for all four traces.
//!
//! Paper shape: ccm-basic ≈ 20 % of L2S at small memories; ccm-sched in
//! between; ccm-mp ≥ 80 % of L2S almost everywhere; all curves converge once
//! the aggregate memory holds the working set.
//!
//! Usage: `cargo run --release -p ccm-bench --bin fig2 [--quick]`

use ccm_bench::harness::{
    fmt_pct, fmt_rps, mem_sweep, paper_servers, results_dir, Runner, Table, MB,
};
use ccm_bench::LineChart;
use ccm_traces::Preset;

fn main() {
    let mut runner = Runner::from_env();
    let nodes = 8;

    for preset in Preset::all() {
        let mut table = Table::new(&[
            "mem/node",
            "l2s",
            "ccm-basic",
            "ccm-sched",
            "ccm-mp",
            "mp/l2s",
            "mp hit",
        ]);
        let mut curves: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 4];
        for mem in mem_sweep() {
            let mut rps = Vec::new();
            let mut mp_hit = 0.0;
            for (si, server) in paper_servers().into_iter().enumerate() {
                let m = runner.run(preset, server, nodes, mem);
                runner.record(&format!("{},{},{}", preset.name(), nodes, mem / MB), &m);
                if m.label == "ccm-mp" {
                    mp_hit = m.total_hit_rate();
                }
                curves[si].push(((mem / MB) as f64, m.throughput_rps));
                rps.push(m.throughput_rps);
            }
            table.row(vec![
                format!("{}MB", mem / MB),
                fmt_rps(rps[0]),
                fmt_rps(rps[1]),
                fmt_rps(rps[2]),
                fmt_rps(rps[3]),
                format!("{:.2}", rps[3] / rps[0]),
                fmt_pct(mp_hit),
            ]);
        }
        println!(
            "\n=== Figure 2 ({}, {} nodes): throughput (req/s) ===",
            preset.name(),
            nodes
        );
        table.print();

        let mut chart = LineChart::new(
            &format!("Figure 2: {} ({} nodes)", preset.name(), nodes),
            "memory per node (MB)",
            "throughput (req/s)",
        )
        .log2_x();
        for (si, server) in paper_servers().into_iter().enumerate() {
            chart.series(&server.label(), &curves[si]);
        }
        let svg = results_dir().join(format!("fig2_{}.svg", preset.name()));
        std::fs::create_dir_all(results_dir()).expect("results dir");
        chart.write(&svg);
        println!("wrote {}", svg.display());
    }

    let path = runner.write_csv("fig2", "trace,nodes,mem_mb");
    println!("\nwrote {}", path.display());
}
