//! Figure 3: CCM throughput normalized against L2S.
//!
//! The paper shows two representative panels: (a) Calgary on 4 nodes and
//! (b) Rutgers on 8 nodes. Shape: ccm-mp ≥ 0.8 almost everywhere, ≥ 0.9 or
//! above 1.0 in most cases; ccm-basic far below.
//!
//! Usage: `cargo run --release -p ccm-bench --bin fig3 [--quick]`

use ccm_bench::harness::{fmt_ratio, mem_sweep, paper_servers, Runner, Table, MB};
use ccm_traces::Preset;
use ccm_webserver::ServerKind;

fn main() {
    let mut runner = Runner::from_env();
    for (preset, nodes) in [(Preset::Calgary, 4usize), (Preset::Rutgers, 8)] {
        let mut table = Table::new(&["mem/node", "ccm-basic", "ccm-sched", "ccm-mp"]);
        for mem in mem_sweep() {
            let mut l2s_rps = 0.0;
            let mut normalized = Vec::new();
            for server in paper_servers() {
                let m = runner.run(preset, server, nodes, mem);
                runner.record(&format!("{},{},{}", preset.name(), nodes, mem / MB), &m);
                if matches!(server, ServerKind::L2s { .. }) {
                    l2s_rps = m.throughput_rps;
                } else {
                    normalized.push(m.throughput_rps / l2s_rps);
                }
            }
            table.row(vec![
                format!("{}MB", mem / MB),
                fmt_ratio(normalized[0]),
                fmt_ratio(normalized[1]),
                fmt_ratio(normalized[2]),
            ]);
        }
        println!(
            "\n=== Figure 3 ({}, {} nodes): throughput normalized to L2S ===",
            preset.name(),
            nodes
        );
        table.print();
    }
    let path = runner.write_csv("fig3", "trace,nodes,mem_mb");
    println!("\nwrote {}", path.display());
}
