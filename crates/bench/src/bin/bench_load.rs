//! `bench_load` — the live-cluster load matrix: every trace preset replayed
//! through a running middleware cluster on both LAN backends, with the
//! paper's closed-loop-client methodology, written to `BENCH_load.json`.
//!
//! Each cell is a full `ccm-load` run: N closed-loop clients per node
//! replay the preset's recorded stream, warm-up requests are discarded,
//! and the report carries throughput, latency quantiles, the hit-class
//! breakdown over the measurement window, and the reconciliation verdict
//! (driver counts vs. protocol stats vs. `ccm_rt_reads_total`).
//!
//! `--quick` (or `CCM_QUICK=1`): two presets, shorter streams — the CI
//! smoke configuration.

use ccm_load::{run, run_on, LoadSpec};
use ccm_net::TcpLan;
use ccm_traces::Preset;
use std::io::Write;
use std::sync::Arc;

fn spec_for(preset: Preset, quick: bool) -> LoadSpec {
    let mut spec = LoadSpec::new(preset);
    if quick {
        spec.head_files = Some(150);
        spec.warmup_requests = 150;
        spec.measure_requests = 300;
    }
    spec
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("CCM_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let presets: &[Preset] = if quick {
        &[Preset::Calgary, Preset::Rutgers]
    } else {
        &Preset::all()
    };

    let mut cells = Vec::new();
    for &preset in presets {
        let spec = spec_for(preset, quick);
        for backend in ["channel", "tcp"] {
            let report = match backend {
                "channel" => run(&spec),
                _ => {
                    let lan =
                        Arc::new(TcpLan::loopback(spec.nodes).expect("bind loopback listeners"));
                    run_on(&spec, lan, "tcp")
                }
            };
            println!("{}", report.summary());
            assert!(
                report.reconciled,
                "{} {}: driver and runtime counters disagree",
                backend, report.preset
            );
            cells.push(report);
        }
    }

    let mut json = String::from("{\n  \"bench\": \"bench_load\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, report) in cells.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&report.to_json());
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    // Repo root, next to Cargo.toml (crates/bench/../..).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_load.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_load.json");
    f.write_all(json.as_bytes()).expect("write BENCH_load.json");
    println!("\nwrote {path}");
}
