//! `bench_load` — the live-cluster load matrix: every trace preset replayed
//! through a running middleware cluster on both LAN backends, with the
//! paper's closed-loop-client methodology, written to `BENCH_load.json`.
//!
//! Each cell is a full `ccm-load` run: N closed-loop clients per node
//! replay the preset's recorded stream, warm-up requests are discarded,
//! and the report carries throughput, latency quantiles, the hit-class
//! breakdown over the measurement window, and the reconciliation verdict
//! (driver counts vs. protocol stats vs. `ccm_rt_reads_total`).
//!
//! Besides the read-only preset matrix, the file carries two sections for
//! the write subsystem:
//!
//! * `"write"` — deterministic write-mix cells in both coherence modes
//!   (write-through and write-back), each reconciled against
//!   `ccm_rt_writes_total` and the flush counters and held to the
//!   durability epilogue.
//! * `"admission"` — the scan-heavy preset replayed with ghost-LRU
//!   admission off and on, plus the hit-ratio delta; the run aborts if
//!   admission fails to beat admission-off on this workload.
//!
//! `--quick` (or `CCM_QUICK=1`): two presets, shorter streams — the CI
//! smoke configuration.

use ccm_load::{run, run_on, LoadSpec};
use ccm_net::TcpLan;
use ccm_rt::WriteConfig;
use ccm_traces::{Preset, ScanConfig};
use std::io::Write;
use std::sync::Arc;

fn spec_for(preset: Preset, quick: bool) -> LoadSpec {
    let mut spec = LoadSpec::new(preset);
    if quick {
        spec.head_files = Some(150);
        spec.warmup_requests = 150;
        spec.measure_requests = 300;
    }
    spec
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("CCM_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let presets: &[Preset] = if quick {
        &[Preset::Calgary, Preset::Rutgers]
    } else {
        &Preset::all()
    };

    let mut cells = Vec::new();
    for &preset in presets {
        let spec = spec_for(preset, quick);
        for backend in ["channel", "tcp"] {
            let report = match backend {
                "channel" => run(&spec),
                _ => {
                    let lan =
                        Arc::new(TcpLan::loopback(spec.nodes).expect("bind loopback listeners"));
                    run_on(&spec, lan, "tcp")
                }
            };
            println!("{}", report.summary());
            assert!(
                report.reconciled,
                "{} {}: driver and runtime counters disagree",
                backend, report.preset
            );
            cells.push(report);
        }
    }

    // Write-mix cells: deterministic replay (the write path's shadow
    // verification and counter reconciliation require in-order ops), one
    // cell per coherence mode.
    let mut write_cells = Vec::new();
    for (label, write) in [
        ("through", WriteConfig::through()),
        ("back", WriteConfig::back(32)),
    ] {
        let mut spec = spec_for(Preset::Calgary, true);
        spec.deterministic = true;
        spec.write_ratio = 0.2;
        spec.write = write;
        let report = run(&spec);
        println!("{}", report.summary());
        assert!(
            report.reconciled,
            "write-{label}: write counters failed reconciliation"
        );
        assert_eq!(report.lost_writes, 0, "write-{label}: lost an acked write");
        write_cells.push(report);
    }

    // Admission on/off on the scan-heavy variant: the same sweeping scan
    // stream, with and without the ghost-LRU filter. The cell is sized so
    // the scan *almost* fits: a single pass only creates masters (never
    // admission-gated), so the filter's value is stopping the replica
    // churn of repeated sweeps from displacing body masters. The window
    // covers many full sweeps — with one pass the two runs are identical
    // by construction.
    let scan = ScanConfig {
        scan_files: 128,
        scan_file_bytes: 8 * 1024,
        period: 2,
    };
    let mut admission_cells = Vec::new();
    for ghosts in [None, Some(256)] {
        let mut spec = spec_for(Preset::Calgary, true);
        spec.deterministic = true;
        spec.capacity_blocks = 48;
        spec.warmup_requests = 600;
        spec.measure_requests = 3000;
        spec.scan = Some(scan);
        spec.admission_ghosts = ghosts;
        let report = run(&spec);
        println!("{}", report.summary());
        assert!(report.reconciled, "admission cell failed reconciliation");
        admission_cells.push(report);
    }
    let (adm_off, adm_on) = (&admission_cells[0], &admission_cells[1]);
    let delta = adm_on.total_hit_ratio() - adm_off.total_hit_ratio();
    assert!(
        delta > 0.0,
        "admission must beat admission-off on the scan-heavy preset \
         (on {:.4} vs off {:.4})",
        adm_on.total_hit_ratio(),
        adm_off.total_hit_ratio()
    );
    println!(
        "admission delta on {}: +{:.2}% total hit ratio ({} rejected, {} ghost hits)",
        adm_on.preset,
        100.0 * delta,
        adm_on.admission_rejected,
        adm_on.admission_ghost_hits
    );

    let push_cells = |json: &mut String, cells: &[ccm_load::LoadReport]| {
        for (i, report) in cells.iter().enumerate() {
            json.push_str("    ");
            json.push_str(&report.to_json());
            json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
        }
    };
    let mut json = String::from("{\n  \"bench\": \"bench_load\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"cells\": [\n");
    push_cells(&mut json, &cells);
    json.push_str("  ],\n  \"write\": [\n");
    push_cells(&mut json, &write_cells);
    json.push_str("  ],\n  \"admission\": [\n");
    push_cells(&mut json, &admission_cells);
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"admission_delta\": {{ \"preset\": \"{}\", \"off_hit_ratio\": {:.6}, \
         \"on_hit_ratio\": {:.6}, \"delta\": {:.6} }}\n",
        adm_on.preset,
        adm_off.total_hit_ratio(),
        adm_on.total_hit_ratio(),
        delta
    ));
    json.push_str("}\n");

    // Repo root, next to Cargo.toml (crates/bench/../..).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_load.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_load.json");
    f.write_all(json.as_bytes()).expect("write BENCH_load.json");
    println!("\nwrote {path}");
}
