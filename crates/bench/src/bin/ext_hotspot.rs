//! Extension X3 (paper §5): forced concentration of hot files.
//!
//! "Surprisingly, \[ccm-mp\]'s complete lack of load balancing does not
//! hurt its performance compared to \[L2S\]. This is because the
//! round-robin distribution of requests diffuses the hot files throughout
//! the cluster. … It would be interesting to observe \[its\] performance
//! under a forced concentration of hot files on a single node." — this
//! experiment does
//! exactly that: the hottest fraction of files all *home* on node 0, so
//! every demand miss for hot content hits one disk.
//!
//! Usage: `cargo run --release -p ccm-bench --bin ext_hotspot [--quick]`

use ccm_bench::harness::{Runner, Table, MB};
use ccm_cluster::Placement;
use ccm_core::NodeId;
use ccm_traces::Preset;
use ccm_webserver::{CcmVariant, ServerKind};

fn main() {
    let mut runner = Runner::from_env();
    let preset = Preset::Rutgers;
    let nodes = 8;

    let mut table = Table::new(&[
        "mem/node",
        "striped rps",
        "hot-node rps",
        "hot/striped",
        "striped disk%",
        "hot disk%",
    ]);
    for mem in [8 * MB, 32 * MB, 64 * MB, 128 * MB] {
        let striped = runner.run(
            preset,
            ServerKind::Ccm(CcmVariant::master_preserving()),
            nodes,
            mem,
        );
        runner.record(
            &format!("{},{},{},striped", preset.name(), nodes, mem / MB),
            &striped,
        );
        let hot = runner.run_with(
            preset,
            ServerKind::Ccm(CcmVariant::master_preserving()),
            nodes,
            mem,
            |cfg| {
                cfg.placement = Placement::Concentrated {
                    hot_node: NodeId(0),
                    hot_fraction: 0.10,
                }
            },
        );
        runner.record(
            &format!("{},{},{},hot", preset.name(), nodes, mem / MB),
            &hot,
        );
        table.row(vec![
            format!("{}MB", mem / MB),
            format!("{:.0}", striped.throughput_rps),
            format!("{:.0}", hot.throughput_rps),
            format!("{:.2}", hot.throughput_rps / striped.throughput_rps),
            format!("{:.1}", 100.0 * striped.disk_rate),
            format!("{:.1}", 100.0 * hot.disk_rate),
        ]);
    }
    println!(
        "=== Extension: hot files concentrated on one home node ({}, {} nodes) ===",
        preset.name(),
        nodes
    );
    table.print();
    println!("\n(The hottest 10% of files home on node 0; caching still diffuses");
    println!("them — concentration mainly bites while the cache is cold or small.)");
    let path = runner.write_csv("ext_hotspot", "trace,nodes,mem_mb,placement");
    println!("wrote {}", path.display());
}
