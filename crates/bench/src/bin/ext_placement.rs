//! Extension X11 (paper §4.1): file distribution under the middleware.
//!
//! "[The middleware] currently differs from [L2S] in that [L2S] assumes
//! files are replicated everywhere. We are in the process of modifying [it]
//! to have the same file distribution … but believe that it will not affect
//! performance significantly." This experiment completes that modification:
//! ccm-mp with files striped across the nodes' disks (the default, misses go
//! to the home node's disk) versus replicated on every disk (misses read
//! locally), and checks the paper's "not significant" prediction.
//!
//! Usage: `cargo run --release -p ccm-bench --bin ext_placement [--quick]`

use ccm_bench::harness::{mem_sweep, Runner, Table, MB};
use ccm_cluster::Placement;
use ccm_traces::Preset;
use ccm_webserver::{CcmVariant, ServerKind};

fn main() {
    let mut runner = Runner::from_env();
    let preset = Preset::Rutgers;
    let nodes = 8;

    let mut table = Table::new(&[
        "mem/node",
        "striped rps",
        "replicated rps",
        "replicated/striped",
    ]);
    for mem in mem_sweep() {
        let striped = runner.run(
            preset,
            ServerKind::Ccm(CcmVariant::master_preserving()),
            nodes,
            mem,
        );
        runner.record(
            &format!("{},{},{},striped", preset.name(), nodes, mem / MB),
            &striped,
        );
        let replicated = runner.run_with(
            preset,
            ServerKind::Ccm(CcmVariant::master_preserving()),
            nodes,
            mem,
            |c| c.placement = Placement::Replicated,
        );
        runner.record(
            &format!("{},{},{},replicated", preset.name(), nodes, mem / MB),
            &replicated,
        );
        table.row(vec![
            format!("{}MB", mem / MB),
            format!("{:.0}", striped.throughput_rps),
            format!("{:.0}", replicated.throughput_rps),
            format!("{:.2}", replicated.throughput_rps / striped.throughput_rps),
        ]);
    }
    println!(
        "=== Extension: file distribution under ccm-mp ({}, {} nodes) ===",
        preset.name(),
        nodes
    );
    table.print();
    println!("\n(The paper predicted this difference would 'not affect performance");
    println!("significantly' — replicated disks remove one control hop per miss");
    println!("but concentrate each node's misses on its own disk.)");
    let path = runner.write_csv("ext_placement", "trace,nodes,mem_mb,placement");
    println!("wrote {}", path.display());
}
