//! Extension X4 (paper §6): L2S with and without TCP hand-off.
//!
//! "Bianchini and Carrera have shown that [TCP hand-off] can provide a
//! performance advantage of approximately 7% over a server that does not use
//! TCP-hand-off." Without hand-off, the front node must relay the whole
//! response, paying a second serving cost and an extra LAN transfer.
//!
//! Usage: `cargo run --release -p ccm-bench --bin ext_handoff [--quick]`

use ccm_bench::harness::{mem_sweep, Runner, Table, MB};
use ccm_traces::Preset;
use ccm_webserver::ServerKind;

fn main() {
    let mut runner = Runner::from_env();
    let preset = Preset::Rutgers;
    let nodes = 8;

    let mut table = Table::new(&["mem/node", "handoff rps", "relay rps", "advantage"]);
    let mut advantages = Vec::new();
    for mem in mem_sweep() {
        let with = runner.run(preset, ServerKind::L2s { handoff: true }, nodes, mem);
        runner.record(&format!("{},{},{}", preset.name(), nodes, mem / MB), &with);
        let without = runner.run(preset, ServerKind::L2s { handoff: false }, nodes, mem);
        runner.record(
            &format!("{},{},{}", preset.name(), nodes, mem / MB),
            &without,
        );
        let adv = with.throughput_rps / without.throughput_rps - 1.0;
        advantages.push(adv);
        table.row(vec![
            format!("{}MB", mem / MB),
            format!("{:.0}", with.throughput_rps),
            format!("{:.0}", without.throughput_rps),
            format!("{:+.1}%", 100.0 * adv),
        ]);
    }
    println!(
        "=== Extension: L2S TCP hand-off ablation ({}, {} nodes) ===",
        preset.name(),
        nodes
    );
    table.print();
    let mean = advantages.iter().sum::<f64>() / advantages.len() as f64;
    println!(
        "\nMean hand-off advantage: {:+.1}% (paper cites ~7%).",
        100.0 * mean
    );
    let path = runner.write_csv("ext_handoff", "trace,nodes,mem_mb");
    println!("wrote {}", path.display());
}
