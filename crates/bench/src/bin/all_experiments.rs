//! Run every table/figure/extension experiment in sequence.
//!
//! Usage: `cargo run --release -p ccm-bench --bin all_experiments [--quick]`
//!
//! Each experiment is also available as its own binary; this driver just
//! spawns them in DESIGN.md order so a single command regenerates the whole
//! evaluation into `results/`.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6a",
    "fig6b",
    "ext_hints",
    "ext_wholefile",
    "ext_hotspot",
    "ext_handoff",
    "ext_disksched",
    "ext_nchance",
    "ext_hardware",
    "ext_latency",
    "ext_locality",
    "ext_promote",
    "ext_placement",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut failed = Vec::new();
    for name in EXPERIMENTS {
        println!("\n############ {name} ############");
        let status = Command::new(dir.join(name))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        if !status.success() {
            eprintln!("{name} exited with {status}");
            failed.push(*name);
        }
    }
    if failed.is_empty() {
        println!("\nAll experiments completed; CSVs in results/.");
    } else {
        eprintln!("\nFailed experiments: {failed:?}");
        std::process::exit(1);
    }
}
