//! Figure 4: hit rates on Rutgers, 8 nodes.
//!
//! Compares ccm-basic, ccm-mp and L2S hit rates per memory size. Paper
//! shape: ccm-mp total hit ≈ L2S's (which is close to the theoretical
//! maximum), but mostly *remote* hits; ccm-basic well below both.
//!
//! Usage: `cargo run --release -p ccm-bench --bin fig4 [--quick]`

use ccm_bench::harness::{fmt_pct, mem_sweep, Runner, Table, MB};
use ccm_traces::Preset;
use ccm_webserver::{CcmVariant, ServerKind};

fn main() {
    let mut runner = Runner::from_env();
    let preset = Preset::Rutgers;
    let nodes = 8;

    let mut table = Table::new(&[
        "mem/node",
        "basic total",
        "mp local",
        "mp remote",
        "mp total",
        "l2s",
        "max possible",
    ]);
    let w = runner.workload(preset);
    for mem in mem_sweep() {
        let basic = runner.run(preset, ServerKind::Ccm(CcmVariant::basic()), nodes, mem);
        runner.record(&format!("{},{},{}", preset.name(), nodes, mem / MB), &basic);
        let mp = runner.run(
            preset,
            ServerKind::Ccm(CcmVariant::master_preserving()),
            nodes,
            mem,
        );
        runner.record(&format!("{},{},{}", preset.name(), nodes, mem / MB), &mp);
        let l2s = runner.run(preset, ServerKind::L2s { handoff: true }, nodes, mem);
        runner.record(&format!("{},{},{}", preset.name(), nodes, mem / MB), &l2s);

        // Theoretical maximum: the request mass covered by the hottest files
        // that fit in the aggregate memory.
        let aggregate = mem * nodes as u64;
        let max_possible = max_request_coverage(&w, aggregate);

        table.row(vec![
            format!("{}MB", mem / MB),
            fmt_pct(basic.total_hit_rate()),
            fmt_pct(mp.local_hit_rate),
            fmt_pct(mp.remote_hit_rate),
            fmt_pct(mp.total_hit_rate()),
            fmt_pct(l2s.total_hit_rate()),
            fmt_pct(max_possible),
        ]);
    }
    println!(
        "=== Figure 4: hit rates ({}, {} nodes) ===",
        preset.name(),
        nodes
    );
    table.print();
    let path = runner.write_csv("fig4", "trace,nodes,mem_mb");
    println!("\nwrote {}", path.display());
}

/// Request coverage of the hottest files fitting in `bytes` of memory.
fn max_request_coverage(w: &ccm_traces::Workload, bytes: u64) -> f64 {
    let mut used = 0u64;
    let mut count = 0usize;
    for &s in w.sizes() {
        if used + s > bytes {
            break;
        }
        used += s;
        count += 1;
    }
    w.request_fraction_of_top(count)
}
