//! Extension X8: response time vs offered load.
//!
//! The paper measures response times at saturation (closed loop, zero think
//! time), where queueing dominates. This experiment instead fixes the client
//! population and sweeps exponential think times, tracing out the classic
//! latency/throughput curve for ccm-mp and L2S — including the unloaded
//! region where the middleware's intrinsic per-block round trips are visible
//! (the "one round trip of 80–100 µs" the paper says cannot account for the
//! saturated latencies).
//!
//! Usage: `cargo run --release -p ccm-bench --bin ext_latency [--quick]`

use ccm_bench::harness::{Runner, Table, MB};
use ccm_traces::Preset;
use ccm_webserver::{CcmVariant, ServerKind};

fn main() {
    let mut runner = Runner::from_env();
    let preset = Preset::Rutgers;
    let nodes = 8;
    let mem = 128 * MB; // memory-resident regime: latency is protocol, not disk

    let mut table = Table::new(&[
        "think(ms)",
        "l2s rps",
        "l2s mean ms",
        "mp rps",
        "mp mean ms",
        "mp/l2s ms",
    ]);
    for think in [0.0f64, 2.0, 8.0, 32.0, 128.0, 512.0] {
        let l2s = runner.run_with(preset, ServerKind::L2s { handoff: true }, nodes, mem, |c| {
            c.think_time_ms = think;
        });
        runner.record(
            &format!("{},{},{},{}", preset.name(), nodes, mem / MB, think),
            &l2s,
        );
        let mp = runner.run_with(
            preset,
            ServerKind::Ccm(CcmVariant::master_preserving()),
            nodes,
            mem,
            |c| {
                c.think_time_ms = think;
            },
        );
        runner.record(
            &format!("{},{},{},{}", preset.name(), nodes, mem / MB, think),
            &mp,
        );
        table.row(vec![
            format!("{think}"),
            format!("{:.0}", l2s.throughput_rps),
            format!("{:.2}", l2s.mean_response_ms),
            format!("{:.0}", mp.throughput_rps),
            format!("{:.2}", mp.mean_response_ms),
            format!("{:.2}", mp.mean_response_ms / l2s.mean_response_ms),
        ]);
    }
    println!(
        "=== Extension: latency vs offered load ({}, {} nodes, {} MB/node) ===",
        preset.name(),
        nodes,
        mem / MB
    );
    table.print();
    println!("\n(At light load both serve in a few ms; the middleware's extra");
    println!("network round trips appear as a modest constant, matching the");
    println!("paper's expectation for Figure 5's 'wall clock' discussion.)");
    let path = runner.write_csv("ext_latency", "trace,nodes,mem_mb,think_ms");
    println!("wrote {}", path.display());
}
