//! Extension X7 (paper §6): hardware sensitivity.
//!
//! "Finally, this paper assumes a very specific set of hardware
//! characteristics. We will investigate the effects of different hardware
//! configurations on the cooperative caching algorithm." The paper's core
//! trade is network communication for disk accesses, "a reasonable trade-off
//! considering the current trend of relative performance between LANs and
//! disks" — so the interesting axes are LAN speed/latency and disk speed.
//!
//! This experiment sweeps three hardware points per axis and reports
//! ccm-mp's throughput normalized to L2S on the same hardware. Expected
//! shape: a slow LAN (10 Mb/s Ethernet-era) erodes the middleware's
//! competitiveness; a fast LAN or slow disk strengthens it.
//!
//! Usage: `cargo run --release -p ccm-bench --bin ext_hardware [--quick]`

use ccm_bench::harness::{Runner, Table, MB};
use ccm_cluster::CostModel;
use ccm_traces::Preset;
use ccm_webserver::{CcmVariant, ServerKind};

struct Hw {
    name: &'static str,
    tweak: fn(&mut CostModel),
}

fn main() {
    let mut runner = Runner::from_env();
    let preset = Preset::Rutgers;
    let nodes = 8;

    let configs: Vec<Hw> = vec![
        Hw {
            name: "paper (Gb/s LAN, 2001 disk)",
            tweak: |_| {},
        },
        Hw {
            name: "slow LAN (100 Mb/s, 0.5ms)",
            tweak: |c| {
                c.nic_bytes_per_ms = 12_500.0;
                c.net_latency_ms = 0.5;
            },
        },
        Hw {
            name: "very slow LAN (10 Mb/s, 1ms)",
            tweak: |c| {
                c.nic_bytes_per_ms = 1_250.0;
                c.net_latency_ms = 1.0;
            },
        },
        Hw {
            name: "fast LAN (10 Gb/s, 10us)",
            tweak: |c| {
                c.nic_bytes_per_ms = 1_250_000.0;
                c.net_latency_ms = 0.01;
            },
        },
        Hw {
            name: "slow disk (12ms seek, 20MB/s)",
            tweak: |c| {
                c.disk_seek_ms = 12.0;
                c.disk_bytes_per_ms = 20_000.0;
            },
        },
        Hw {
            name: "fast disk (1ms seek, 200MB/s)",
            tweak: |c| {
                c.disk_seek_ms = 1.0;
                c.disk_bytes_per_ms = 200_000.0;
            },
        },
    ];

    // Two regimes: disk-bound (16 MB/node) and memory-resident (128 MB/node).
    for mem in [16 * MB, 128 * MB] {
        let mut table = Table::new(&["hardware", "l2s rps", "ccm-mp rps", "mp/l2s"]);
        for hw in &configs {
            let mut costs = CostModel::default();
            (hw.tweak)(&mut costs);
            let l2s = runner.run_with(
                preset,
                ServerKind::L2s { handoff: true },
                nodes,
                mem,
                |cfg| {
                    cfg.costs = costs.clone();
                },
            );
            runner.record(
                &format!("{},{},{},{}", preset.name(), nodes, mem / MB, hw.name),
                &l2s,
            );
            let costs2 = {
                let mut c = CostModel::default();
                (hw.tweak)(&mut c);
                c
            };
            let mp = runner.run_with(
                preset,
                ServerKind::Ccm(CcmVariant::master_preserving()),
                nodes,
                mem,
                |cfg| {
                    cfg.costs = costs2.clone();
                },
            );
            runner.record(
                &format!("{},{},{},{}", preset.name(), nodes, mem / MB, hw.name),
                &mp,
            );
            table.row(vec![
                hw.name.to_string(),
                format!("{:.0}", l2s.throughput_rps),
                format!("{:.0}", mp.throughput_rps),
                format!("{:.2}", mp.throughput_rps / l2s.throughput_rps),
            ]);
        }
        println!(
            "
=== Extension: hardware sensitivity ({}, {} nodes, {} MB/node) ===",
            preset.name(),
            nodes,
            mem / MB
        );
        table.print();
    }
    println!("\n(The middleware trades network messages for disk reads, so its");
    println!("competitiveness should track the LAN:disk speed ratio.)");
    let path = runner.write_csv("ext_hardware", "trace,nodes,mem_mb,hardware");
    println!("wrote {}", path.display());
}
