//! Extension X9: temporal locality in the request stream.
//!
//! The synthetic presets sample i.i.d. from the popularity distribution;
//! real logs also re-reference recently-touched documents (per-client
//! sessions). This experiment adds an LRU-stack locality layer to every
//! client and measures how it shifts the middleware's hit composition:
//! temporal locality converts remote hits into *local* hits (the re-read is
//! served by the replica fetched moments ago), narrowing the gap to L2S
//! without changing the protocol at all.
//!
//! Usage: `cargo run --release -p ccm-bench --bin ext_locality [--quick]`

use ccm_bench::harness::{fmt_pct, Runner, Table, MB};
use ccm_traces::Preset;
use ccm_webserver::{CcmVariant, ServerKind};

fn main() {
    let mut runner = Runner::from_env();
    let preset = Preset::Rutgers;
    let nodes = 8;
    let mem = 64 * MB;

    let mut table = Table::new(&[
        "locality",
        "mp rps",
        "mp local",
        "mp remote",
        "mp disk",
        "l2s rps",
        "mp/l2s",
    ]);
    for locality in [0.0f64, 0.2, 0.4, 0.6] {
        let mp = runner.run_with(
            preset,
            ServerKind::Ccm(CcmVariant::master_preserving()),
            nodes,
            mem,
            |c| c.client_locality = locality,
        );
        runner.record(
            &format!("{},{},{},{}", preset.name(), nodes, mem / MB, locality),
            &mp,
        );
        let l2s = runner.run_with(preset, ServerKind::L2s { handoff: true }, nodes, mem, |c| {
            c.client_locality = locality
        });
        runner.record(
            &format!("{},{},{},{}", preset.name(), nodes, mem / MB, locality),
            &l2s,
        );
        table.row(vec![
            format!("{locality:.1}"),
            format!("{:.0}", mp.throughput_rps),
            fmt_pct(mp.local_hit_rate),
            fmt_pct(mp.remote_hit_rate),
            fmt_pct(mp.disk_rate),
            format!("{:.0}", l2s.throughput_rps),
            format!("{:.2}", mp.throughput_rps / l2s.throughput_rps),
        ]);
    }
    println!(
        "=== Extension: client temporal locality ({}, {} nodes, {} MB/node) ===",
        preset.name(),
        nodes,
        mem / MB
    );
    table.print();
    let path = runner.write_csv("ext_locality", "trace,nodes,mem_mb,locality");
    println!("\nwrote {}", path.display());
}
