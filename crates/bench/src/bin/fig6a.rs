//! Figure 6(a): ccm-mp resource utilization vs per-node memory
//! (Rutgers, 8 nodes).
//!
//! Paper shape: the disk dominates at small memories and falls away as
//! memory grows; CPU rises as the server becomes compute-bound; "the
//! network is mostly idle".
//!
//! Usage: `cargo run --release -p ccm-bench --bin fig6a [--quick]`

use ccm_bench::harness::{fmt_pct, mem_sweep, Runner, Table, MB};
use ccm_traces::Preset;
use ccm_webserver::{CcmVariant, ServerKind};

fn main() {
    let mut runner = Runner::from_env();
    let preset = Preset::Rutgers;
    let nodes = 8;

    let mut table = Table::new(&["mem/node", "disk", "cpu", "nic", "throughput"]);
    for mem in mem_sweep() {
        let m = runner.run(
            preset,
            ServerKind::Ccm(CcmVariant::master_preserving()),
            nodes,
            mem,
        );
        runner.record(&format!("{},{},{}", preset.name(), nodes, mem / MB), &m);
        table.row(vec![
            format!("{}MB", mem / MB),
            fmt_pct(m.utilization.disk),
            fmt_pct(m.utilization.cpu),
            fmt_pct(m.utilization.nic),
            format!("{:.0}", m.throughput_rps),
        ]);
    }
    println!(
        "=== Figure 6(a): ccm-mp resource utilization ({}, {} nodes) ===",
        preset.name(),
        nodes
    );
    table.print();
    let path = runner.write_csv("fig6a", "trace,nodes,mem_mb");
    println!("\nwrote {}", path.display());
}
