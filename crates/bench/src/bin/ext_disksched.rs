//! Extension X5: the disk-queue fix decomposed.
//!
//! The paper's -Basic→-Sched step bundles "request scheduling, caching,
//! and/or prefetching" (§5). This ablation separates the two ingredients we
//! implement — C-LOOK/contiguity-first queue ordering and extent read-ahead
//! — by running all four combinations on the global-LRU replacement policy.
//!
//! Usage: `cargo run --release -p ccm-bench --bin ext_disksched [--quick]`

use ccm_bench::harness::{Runner, Table, MB};
use ccm_cluster::DiskScheduler;
use ccm_traces::Preset;
use ccm_webserver::{CcmVariant, ServerKind};

fn main() {
    let mut runner = Runner::from_env();
    let preset = Preset::Rutgers;
    let nodes = 8;

    let combos: Vec<(&str, DiskScheduler, bool)> = vec![
        ("fifo", DiskScheduler::Fifo, false),
        ("fifo+ra", DiskScheduler::Fifo, true),
        ("clook", DiskScheduler::Batched, false),
        ("clook+ra", DiskScheduler::Batched, true),
    ];

    let mut table = Table::new(&[
        "mem/node",
        "fifo",
        "fifo+ra",
        "clook",
        "clook+ra",
        "fifo seeks/rd",
        "clook+ra seeks/rd",
    ]);
    for mem in [4 * MB, 8 * MB, 16 * MB, 32 * MB] {
        let mut rps = Vec::new();
        let mut fifo_spr = 0.0;
        let mut best_spr = 0.0;
        for &(name, sched, ra) in &combos {
            let mut v = CcmVariant::basic();
            v.scheduler = sched;
            v.read_ahead = ra;
            let m = runner.run(preset, ServerKind::Ccm(v), nodes, mem);
            runner.record(
                &format!("{},{},{},{}", preset.name(), nodes, mem / MB, name),
                &m,
            );
            if name == "fifo" {
                fifo_spr = m.seeks_per_read();
            }
            if name == "clook+ra" {
                best_spr = m.seeks_per_read();
            }
            rps.push(m.throughput_rps);
        }
        table.row(vec![
            format!("{}MB", mem / MB),
            format!("{:.0}", rps[0]),
            format!("{:.0}", rps[1]),
            format!("{:.0}", rps[2]),
            format!("{:.0}", rps[3]),
            format!("{fifo_spr:.2}"),
            format!("{best_spr:.2}"),
        ]);
    }
    println!(
        "=== Extension: disk-queue fix decomposition, global-LRU policy ({}, {} nodes) ===",
        preset.name(),
        nodes
    );
    table.print();
    println!("\n(Read-ahead turns per-block cold reads into one extent read;");
    println!("queue reordering alone cannot recreate contiguity for round-trip-");
    println!("paced streams — together they are the paper's -Sched fix.)");
    let path = runner.write_csv("ext_disksched", "trace,nodes,mem_mb,combo");
    println!("wrote {}", path.display());
}
