//! `bench_front` — the live CCM-vs-L2S showdown: every trace preset
//! replayed through the HTTP front door, crossed with every dispatch
//! policy, on both backends, written to `BENCH_front.json`.
//!
//! Each cell is a full `ccm-load` front-door run: closed-loop clients
//! replay the preset's recorded stream over keep-alive connections,
//! every response byte is verified against the backing store, and the
//! report carries the block-weighted hit ratio, handoff count, latency
//! quantiles, and the reconciliation verdict (driver counts vs. the
//! front tier's `ccm_front_*` counters vs. the backend's accounting).
//!
//! The matrix is `preset × dispatch policy × backend` — the paper's
//! comparison (block-granular cooperative caching vs. L2S's whole-file
//! locality routing) plus the dispatch axis the front tier adds.
//!
//! `--quick` (or `CCM_QUICK=1`): two presets, two policies, shorter
//! streams — the CI smoke configuration.

use ccm_core::ReplacementPolicy;
use ccm_front::PolicyKind;
use ccm_load::{run_front, BackendChoice, FrontSpec};
use ccm_traces::Preset;
use std::io::Write;

fn spec_for(
    preset: Preset,
    dispatch: PolicyKind,
    backend: BackendChoice,
    quick: bool,
) -> FrontSpec {
    let mut spec = FrontSpec::new(preset, dispatch, backend);
    if quick {
        spec.head_files = Some(150);
        spec.warmup_requests = 150;
        spec.measure_requests = 300;
    }
    spec
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("CCM_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let presets: &[Preset] = if quick {
        &[Preset::Calgary, Preset::Rutgers]
    } else {
        &Preset::all()
    };
    let policies: &[PolicyKind] = if quick {
        &[PolicyKind::RoundRobin, PolicyKind::ContentAware]
    } else {
        &PolicyKind::all()
    };
    let backends = [
        BackendChoice::Ccm(ReplacementPolicy::MasterPreserving),
        BackendChoice::L2s,
    ];

    let mut cells = Vec::new();
    for &preset in presets {
        for &dispatch in policies {
            for backend in backends {
                let spec = spec_for(preset, dispatch, backend, quick);
                let report = run_front(&spec);
                println!("{}", report.summary());
                assert!(
                    report.reconciled,
                    "{} {} {}: driver and front-tier counters disagree",
                    report.backend, report.preset, report.dispatch
                );
                cells.push(report);
            }
        }
    }

    // The headline comparison the matrix exists for: CCM vs L2S hit
    // ratio per preset, each at its best dispatch policy.
    println!("\ncluster-memory hit ratio, best policy per backend:");
    for &preset in presets {
        let best = |name: &str| {
            cells
                .iter()
                .filter(|c| c.backend == name && c.preset.starts_with(preset.name()))
                .map(|c| c.hit_ratio())
                .fold(0.0f64, f64::max)
        };
        println!(
            "  {:<10} ccm {:>5.1}%  l2s {:>5.1}%",
            preset.name(),
            100.0 * best("ccm"),
            100.0 * best("l2s"),
        );
    }

    let mut json = String::from("{\n  \"bench\": \"bench_front\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, report) in cells.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&report.to_json());
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    // Repo root, next to Cargo.toml (crates/bench/../..).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_front.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_front.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_front.json");
    println!("\nwrote {path}");
}
