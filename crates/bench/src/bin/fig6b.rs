//! Figure 6(b): ccm-mp throughput vs cluster size (Rutgers, 32 MB/node).
//!
//! Paper shape: near-linear scaling up to 32 nodes — both because CPU is
//! added and because aggregate memory grows with the cluster.
//!
//! Usage: `cargo run --release -p ccm-bench --bin fig6b [--quick]`

use ccm_bench::harness::{Runner, Table, MB};
use ccm_traces::Preset;
use ccm_webserver::{CcmVariant, ServerKind};

fn main() {
    let mut runner = Runner::from_env();
    let preset = Preset::Rutgers;
    let mem = 32 * MB;

    let mut table = Table::new(&["nodes", "throughput", "speedup vs 4", "total hit"]);
    let mut base = 0.0;
    for nodes in [4usize, 8, 16, 32] {
        let m = runner.run(
            preset,
            ServerKind::Ccm(CcmVariant::master_preserving()),
            nodes,
            mem,
        );
        runner.record(&format!("{},{},{}", preset.name(), nodes, mem / MB), &m);
        if nodes == 4 {
            base = m.throughput_rps;
        }
        table.row(vec![
            format!("{nodes}"),
            format!("{:.0}", m.throughput_rps),
            format!("{:.2}x", m.throughput_rps / base),
            format!("{:.1}%", 100.0 * m.total_hit_rate()),
        ]);
    }
    println!(
        "=== Figure 6(b): ccm-mp scaling ({}, {} MB/node) ===",
        preset.name(),
        mem / MB
    );
    table.print();
    let path = runner.write_csv("fig6b", "trace,nodes,mem_mb");
    println!("\nwrote {}", path.display());
}
