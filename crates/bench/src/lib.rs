//! # ccm-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md's per-experiment
//! index), plus the `ext_*` extension/ablation studies and an `all` driver.
//! Each binary prints the rows/series the paper reports and writes a CSV
//! under `results/`.
//!
//! Absolute numbers will not match the paper (the substrate is a calibrated
//! simulator and the traces are synthetic stand-ins); the *shapes* are what
//! EXPERIMENTS.md checks: who wins, by roughly what factor, and where the
//! crossovers fall.
//!
//! Run scale: full runs take minutes; set `CCM_QUICK=1` (or pass `--quick`)
//! to shrink every run for smoke-testing.

pub mod chart;
pub mod harness;

pub use chart::LineChart;
pub use harness::{ExperimentScale, Runner};
