//! A small SVG line-chart renderer for the figure binaries.
//!
//! The paper's figures are throughput/ratio curves over a log-2 memory axis;
//! this emits them as self-contained SVG next to the CSVs so results can be
//! eyeballed without any plotting stack. Deliberately minimal: line series,
//! linear or log-2 X, linear Y from zero, ticks, legend.

use std::fmt::Write as _;
use std::path::Path;

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 440.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 150.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 50.0;

/// A qualitative palette (colorblind-safe-ish).
const COLORS: &[&str] = &[
    "#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9", "#999999",
];

/// A line chart under construction.
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    log2_x: bool,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl LineChart {
    /// A chart with the given title and axis labels.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> LineChart {
        LineChart {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            log2_x: false,
            series: Vec::new(),
        }
    }

    /// Use a log-2 X axis (the paper's memory sweeps double per step).
    pub fn log2_x(mut self) -> LineChart {
        self.log2_x = true;
        self
    }

    /// Add one named series. Points with non-finite coordinates are skipped.
    pub fn series(&mut self, name: &str, points: &[(f64, f64)]) -> &mut LineChart {
        let clean: Vec<(f64, f64)> = points
            .iter()
            .copied()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        self.series.push((name.to_string(), clean));
        self
    }

    fn x_transform(&self, x: f64) -> f64 {
        if self.log2_x {
            x.max(f64::MIN_POSITIVE).log2()
        } else {
            x
        }
    }

    /// Render the chart as an SVG document.
    pub fn render(&self) -> String {
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;

        let xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().map(|&(x, _)| self.x_transform(x)))
            .collect();
        let ys: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().map(|&(_, y)| y))
            .collect();
        let (x_min, x_max) = bounds(&xs, 0.0, 1.0);
        let (_, y_max) = bounds(&ys, 0.0, 1.0);
        let y_min = 0.0; // figures read from zero
        let y_max = y_max * 1.05;

        let sx = |x: f64| MARGIN_L + (self.x_transform(x) - x_min) / (x_max - x_min) * plot_w;
        let sy = |y: f64| MARGIN_T + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h;

        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="12">"#
        );
        let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);
        let _ = writeln!(
            out,
            r#"<text x="{}" y="20" text-anchor="middle" font-size="15">{}</text>"#,
            WIDTH / 2.0,
            escape(&self.title)
        );

        // Axes.
        let x0 = MARGIN_L;
        let y0 = MARGIN_T + plot_h;
        let _ = writeln!(
            out,
            r#"<line x1="{x0}" y1="{y0}" x2="{}" y2="{y0}" stroke="black"/>"#,
            MARGIN_L + plot_w
        );
        let _ = writeln!(
            out,
            r#"<line x1="{x0}" y1="{MARGIN_T}" x2="{x0}" y2="{y0}" stroke="black"/>"#
        );
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 12.0,
            escape(&self.x_label)
        );
        let _ = writeln!(
            out,
            r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        );

        // X ticks: at each distinct data x (memory sweeps have few points).
        let mut tick_xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().map(|&(x, _)| x))
            .collect();
        tick_xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        tick_xs.dedup();
        if tick_xs.len() <= 12 {
            for &x in &tick_xs {
                let px = sx(x);
                let _ = writeln!(
                    out,
                    r#"<line x1="{px}" y1="{y0}" x2="{px}" y2="{}" stroke="black"/>"#,
                    y0 + 4.0
                );
                let _ = writeln!(
                    out,
                    r#"<text x="{px}" y="{}" text-anchor="middle">{}</text>"#,
                    y0 + 18.0,
                    fmt_num(x)
                );
            }
        }
        // Y ticks: 5 even divisions.
        for i in 0..=5 {
            let y = y_min + (y_max - y_min) * i as f64 / 5.0;
            let py = sy(y);
            let _ = writeln!(
                out,
                r#"<line x1="{}" y1="{py}" x2="{x0}" y2="{py}" stroke="black"/>"#,
                x0 - 4.0
            );
            let _ = writeln!(
                out,
                r##"<line x1="{x0}" y1="{py}" x2="{}" y2="{py}" stroke="#dddddd"/>"##,
                MARGIN_L + plot_w
            );
            let _ = writeln!(
                out,
                r#"<text x="{}" y="{}" text-anchor="end">{}</text>"#,
                x0 - 8.0,
                py + 4.0,
                fmt_num(y)
            );
        }

        // Series.
        for (i, (name, pts)) in self.series.iter().enumerate() {
            let color = COLORS[i % COLORS.len()];
            if pts.len() > 1 {
                let path: Vec<String> = pts
                    .iter()
                    .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
                    .collect();
                let _ = writeln!(
                    out,
                    r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                    path.join(" ")
                );
            }
            for &(x, y) in pts {
                let _ = writeln!(
                    out,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                    sx(x),
                    sy(y)
                );
            }
            // Legend entry.
            let ly = MARGIN_T + 16.0 * i as f64;
            let lx = MARGIN_L + plot_w + 12.0;
            let _ = writeln!(
                out,
                r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
                lx + 18.0
            );
            let _ = writeln!(
                out,
                r#"<text x="{}" y="{}">{}</text>"#,
                lx + 24.0,
                ly + 4.0,
                escape(name)
            );
        }

        out.push_str("</svg>\n");
        out
    }

    /// Render and write to `path`.
    ///
    /// # Panics
    /// Panics if the file cannot be written.
    pub fn write(&self, path: &Path) {
        std::fs::write(path, self.render()).expect("write svg");
    }
}

fn bounds(vals: &[f64], fallback_min: f64, fallback_max: f64) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in vals {
        min = min.min(v);
        max = max.max(v);
    }
    if !min.is_finite() || !max.is_finite() {
        return (fallback_min, fallback_max);
    }
    if (max - min).abs() < f64::EPSILON {
        (min - 0.5, max + 0.5)
    } else {
        (min, max)
    }
}

fn fmt_num(x: f64) -> String {
    if x.abs() >= 1_000.0 || x.fract().abs() < 1e-9 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LineChart {
        let mut c = LineChart::new("t", "mem", "req/s").log2_x();
        c.series("a", &[(4.0, 100.0), (8.0, 200.0), (16.0, 400.0)]);
        c.series("b", &[(4.0, 50.0), (8.0, 75.0), (16.0, 300.0)]);
        c
    }

    #[test]
    fn renders_a_polyline_per_series() {
        let svg = sample().render();
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn legend_and_labels_present() {
        let svg = sample().render();
        for needle in [">a<", ">b<", ">mem<", ">req/s<", ">t<"] {
            assert!(svg.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn log_scale_spaces_doublings_evenly() {
        let svg = sample().render();
        // Extract the first polyline's x coordinates.
        let start = svg.find("<polyline points=\"").unwrap() + 18;
        let end = svg[start..].find('"').unwrap() + start;
        let xs: Vec<f64> = svg[start..end]
            .split(' ')
            .map(|p| p.split(',').next().unwrap().parse().unwrap())
            .collect();
        let d1 = xs[1] - xs[0];
        let d2 = xs[2] - xs[1];
        assert!((d1 - d2).abs() < 0.5, "log2 axis not even: {d1} vs {d2}");
    }

    #[test]
    fn non_finite_points_are_dropped() {
        let mut c = LineChart::new("t", "x", "y");
        c.series("a", &[(1.0, f64::NAN), (2.0, 3.0), (f64::INFINITY, 1.0)]);
        let svg = c.render();
        assert_eq!(svg.matches("<circle").count(), 1);
        assert!(!svg.contains("NaN"));
        assert!(!svg.contains("inf"));
    }

    #[test]
    fn escapes_markup_in_labels() {
        let mut c = LineChart::new("a<b&c", "x", "y");
        c.series("s<1>", &[(1.0, 1.0), (2.0, 2.0)]);
        let svg = c.render();
        assert!(svg.contains("a&lt;b&amp;c"));
        assert!(svg.contains("s&lt;1&gt;"));
    }

    #[test]
    fn empty_chart_still_renders() {
        let c = LineChart::new("empty", "x", "y");
        let svg = c.render();
        assert!(svg.contains("</svg>"));
    }
}
