//! Micro-benchmarks of the hot paths: protocol access, LRU, disk scheduler,
//! event queue, and one small end-to-end simulation per server.
//!
//! Hand-rolled harness (`harness = false`): the container has no registry
//! access, so criterion is not available. Each benchmark runs a warm-up
//! pass, then a fixed number of timed iterations, and reports min / median /
//! mean wall-clock time per iteration. Run with
//! `cargo bench -p ccm-bench`.

use ccm_core::{BlockId, CacheConfig, ClusterCache, FileId, NodeId, ReplacementPolicy};
use simcore::{EventQueue, Rng, SimTime};
use std::time::{Duration, Instant};

/// Time `iters` runs of `f` (plus 2 warm-up runs) and print a stats line.
fn bench<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) {
    for _ in 0..2 {
        std::hint::black_box(f());
    }
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed());
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!("{name:<40} min {min:>12.3?}   median {median:>12.3?}   mean {mean:>12.3?}");
}

fn bench_cluster_cache() {
    for policy in [
        ReplacementPolicy::GlobalLru,
        ReplacementPolicy::MasterPreserving,
    ] {
        bench(
            &format!("cluster_cache/access_{}", policy.label()),
            20,
            || {
                let mut cache = ClusterCache::new(CacheConfig::paper(8, 1024, policy));
                let mut rng = Rng::new(7);
                for _ in 0..10_000 {
                    let node = NodeId(rng.next_below(8) as u16);
                    let block = BlockId::new(FileId(rng.next_below(500) as u32), 0);
                    std::hint::black_box(cache.access(node, block));
                }
                cache.stats().accesses()
            },
        );
    }
}

fn bench_event_queue() {
    bench("event_queue_push_pop_10k", 50, || {
        let mut rng = Rng::new(3);
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.push(SimTime(rng.next_below(1_000_000)), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        acc
    });
}

fn bench_disk_scheduler() {
    use ccm_cluster::disk::{Disk, DiskRequest, DiskScheduler};
    use ccm_cluster::CostModel;
    let costs = CostModel::default();
    for sched in [DiskScheduler::Fifo, DiskScheduler::Batched] {
        bench(&format!("disk/{sched:?}_1k_requests"), 50, || {
            let mut rng = Rng::new(11);
            let reqs: Vec<DiskRequest> = (0..1_000)
                .map(|i| DiskRequest {
                    tag: i,
                    address: rng.next_below(64) * 65536 + rng.next_below(8) * 8192,
                    bytes: 8192,
                    extents: 1,
                })
                .collect();
            let mut disk = Disk::new(sched);
            let mut pending = None;
            for r in reqs {
                if let Some(cmp) = disk.submit(SimTime::ZERO, r, &costs) {
                    pending = Some(cmp);
                }
            }
            let mut count = 0u64;
            while let Some(cmp) = pending {
                count += 1;
                pending = disk.next_after_completion(cmp.done, &costs);
            }
            count
        });
    }
}

fn bench_workload_sampling() {
    use ccm_traces::Preset;
    let w = Preset::Calgary.workload();
    bench("zipf_sample_calgary_100k", 20, || {
        let mut rng = Rng::new(5);
        let mut acc = 0u64;
        for _ in 0..100_000 {
            acc = acc.wrapping_add(w.sample(&mut rng).0 as u64);
        }
        acc
    });
}

fn bench_end_to_end() {
    use ccm_traces::SynthConfig;
    use ccm_webserver::{CcmVariant, ServerKind, SimConfig};
    use std::sync::Arc;

    let workload = Arc::new(
        SynthConfig {
            n_files: 300,
            total_bytes: Some(16 << 20),
            ..SynthConfig::default()
        }
        .build(),
    );
    for server in [
        ServerKind::L2s { handoff: true },
        ServerKind::Ccm(CcmVariant::master_preserving()),
    ] {
        bench(&format!("end_to_end_small/{}", server.label()), 10, || {
            let mut cfg = SimConfig::paper(server, 4, 8 << 20).quick();
            cfg.warmup_requests = 500;
            cfg.measure_requests = 1_500;
            std::hint::black_box(ccm_webserver::run(&cfg, &workload).throughput_rps)
        });
    }
}

fn main() {
    // `cargo test` runs benches with `--test`; don't spin through the full
    // timing loops there.
    if std::env::args().any(|a| a == "--test") {
        println!("micro: smoke mode (--test), skipping timed runs");
        return;
    }
    bench_cluster_cache();
    bench_event_queue();
    bench_disk_scheduler();
    bench_workload_sampling();
    bench_end_to_end();
}
