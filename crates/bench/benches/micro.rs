//! Criterion micro-benchmarks of the hot paths: protocol access, LRU, disk
//! scheduler, event queue, and one small end-to-end simulation per server.

use ccm_core::{BlockId, CacheConfig, ClusterCache, FileId, NodeId, ReplacementPolicy};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use simcore::{EventQueue, Rng, SimTime};

fn bench_cluster_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_cache");
    for policy in [
        ReplacementPolicy::GlobalLru,
        ReplacementPolicy::MasterPreserving,
    ] {
        g.bench_function(format!("access_{}", policy.label()), |b| {
            b.iter_batched(
                || {
                    let cache = ClusterCache::new(CacheConfig::paper(8, 1024, policy));
                    let rng = Rng::new(7);
                    (cache, rng)
                },
                |(mut cache, mut rng)| {
                    for _ in 0..10_000 {
                        let node = NodeId(rng.next_below(8) as u16);
                        let block = BlockId::new(FileId(rng.next_below(500) as u32), 0);
                        std::hint::black_box(cache.access(node, block));
                    }
                    cache.stats().accesses()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter_batched(
            || Rng::new(3),
            |mut rng| {
                let mut q = EventQueue::new();
                for i in 0..10_000u64 {
                    q.push(SimTime(rng.next_below(1_000_000)), i);
                }
                let mut acc = 0u64;
                while let Some((_, v)) = q.pop() {
                    acc = acc.wrapping_add(v);
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_disk_scheduler(c: &mut Criterion) {
    use ccm_cluster::disk::{Disk, DiskRequest, DiskScheduler};
    use ccm_cluster::CostModel;
    let costs = CostModel::default();
    let mut g = c.benchmark_group("disk");
    for sched in [DiskScheduler::Fifo, DiskScheduler::Batched] {
        g.bench_function(format!("{sched:?}_1k_requests"), |b| {
            b.iter_batched(
                || {
                    let mut rng = Rng::new(11);
                    let reqs: Vec<DiskRequest> = (0..1_000)
                        .map(|i| DiskRequest {
                            tag: i,
                            address: rng.next_below(64) * 65536 + rng.next_below(8) * 8192,
                            bytes: 8192,
                            extents: 1,
                        })
                        .collect();
                    (Disk::new(sched), reqs)
                },
                |(mut disk, reqs)| {
                    let mut pending = None;
                    for r in reqs {
                        if let Some(cmp) = disk.submit(SimTime::ZERO, r, &costs) {
                            pending = Some(cmp);
                        }
                    }
                    let mut count = 0u64;
                    while let Some(cmp) = pending {
                        count += 1;
                        pending = disk.next_after_completion(cmp.done, &costs);
                    }
                    count
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_workload_sampling(c: &mut Criterion) {
    use ccm_traces::Preset;
    let w = Preset::Calgary.workload();
    c.bench_function("zipf_sample_calgary", |b| {
        let mut rng = Rng::new(5);
        b.iter(|| std::hint::black_box(w.sample(&mut rng)))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    use ccm_traces::SynthConfig;
    use ccm_webserver::{CcmVariant, ServerKind, SimConfig};
    use std::sync::Arc;

    let workload = Arc::new(
        SynthConfig {
            n_files: 300,
            total_bytes: Some(16 << 20),
            ..SynthConfig::default()
        }
        .build(),
    );
    let mut g = c.benchmark_group("end_to_end_small");
    g.sample_size(10);
    for server in [
        ServerKind::L2s { handoff: true },
        ServerKind::Ccm(CcmVariant::master_preserving()),
    ] {
        g.bench_function(server.label(), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::paper(server, 4, 8 << 20).quick();
                cfg.warmup_requests = 500;
                cfg.measure_requests = 1_500;
                std::hint::black_box(ccm_webserver::run(&cfg, &workload).throughput_rps)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cluster_cache,
    bench_event_queue,
    bench_disk_scheduler,
    bench_workload_sampling,
    bench_end_to_end
);
criterion_main!(benches);
