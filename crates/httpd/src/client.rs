//! A tiny blocking HTTP client and a load generator.
//!
//! Enough to exercise the server from tests and examples: one-shot and
//! keep-alive `GET`s with `Content-Length` framing, plus a multi-threaded
//! round-robin load run that verifies every body against a checker.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The body (empty for HEAD).
    pub body: Vec<u8>,
}

fn read_response(reader: &mut impl BufRead, head_only: bool) -> std::io::Result<Response> {
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(bad("eof in headers"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| bad("bad length"))?;
            }
        }
    }
    let mut body = vec![0u8; if head_only { 0 } else { content_length }];
    reader.read_exact(&mut body)?;
    Ok(Response { status, body })
}

/// One-shot `GET` (fresh connection, `Connection: close`).
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: cluster\r\nConnection: close\r\n\r\n"
    )?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader, false)
}

/// One-shot `HEAD`.
pub fn head(addr: SocketAddr, path: &str) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    write!(
        stream,
        "HEAD {path} HTTP/1.1\r\nHost: cluster\r\nConnection: close\r\n\r\n"
    )?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader, true)
}

/// A persistent connection issuing several `GET`s.
pub struct KeepAlive {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl KeepAlive {
    /// Open a persistent connection to `addr`.
    pub fn connect(addr: SocketAddr) -> std::io::Result<KeepAlive> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(KeepAlive {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// `GET` over the persistent connection.
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        write!(self.writer, "GET {path} HTTP/1.1\r\nHost: cluster\r\n\r\n")?;
        self.writer.flush()?;
        read_response(&mut self.reader, false)
    }
}

/// Result of a load run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// Successful requests (status 200, body verified).
    pub ok: u64,
    /// Failed requests (transport error, bad status, or bad body).
    pub failed: u64,
}

/// Drive `threads × requests_per_thread` keep-alive `GET`s round-robin over
/// `addrs`, verifying each body with `check(file_id, body) -> bool`.
pub fn load_run(
    addrs: &[SocketAddr],
    files: u32,
    threads: usize,
    requests_per_thread: usize,
    check: impl Fn(u32, &[u8]) -> bool + Send + Sync + 'static,
) -> LoadReport {
    let check = std::sync::Arc::new(check);
    let addrs: std::sync::Arc<[SocketAddr]> = addrs.to_vec().into();
    let mut handles = Vec::new();
    for t in 0..threads {
        let check = check.clone();
        let addrs = addrs.clone();
        handles.push(std::thread::spawn(move || {
            let addr = addrs[t % addrs.len()];
            let mut rng = simcore_rng(t as u64);
            let mut conn = KeepAlive::connect(addr).ok();
            let (mut ok, mut failed) = (0u64, 0u64);
            for _ in 0..requests_per_thread {
                let id = (rng_next(&mut rng) % files as u64) as u32;
                let result = conn
                    .as_mut()
                    .ok_or(())
                    .and_then(|c| c.get(&format!("/file/{id}")).map_err(|_| ()));
                match result {
                    Ok(r) if r.status == 200 && check(id, &r.body) => ok += 1,
                    _ => {
                        failed += 1;
                        conn = KeepAlive::connect(addr).ok(); // reconnect
                    }
                }
            }
            (ok, failed)
        }));
    }
    let mut report = LoadReport { ok: 0, failed: 0 };
    for h in handles {
        let (ok, failed) = h.join().expect("load thread");
        report.ok += ok;
        report.failed += failed;
    }
    report
}

// A tiny local SplitMix64 so this crate needs no extra dependencies.
fn simcore_rng(seed: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xDEAD_BEEF
}

fn rng_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
