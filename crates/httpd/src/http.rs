//! Minimal HTTP/1.x request parsing and response writing — the shared
//! module every HTTP-speaking tier in this workspace parses with.
//!
//! Originally this supported exactly what the block-server needed: the
//! request line and enough header handling to honor `Connection:
//! keep-alive`/`close`. The front tier (`ccm-front`) needs real header
//! access — `Range`, `If-Range`, multi-valued fields — so parsing now
//! captures every header into [`Headers`], a case-insensitive multimap
//! that also combines repeated fields the way RFC 9110 §5.2 prescribes
//! (same semantics as one comma-joined field). Robust against malformed
//! input (a bad request yields a 400, never a panic) and bounded
//! (oversized request heads are rejected) so listeners can face untrusted
//! bytes.

use std::io::{BufRead, Write};

/// Largest accepted request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// The headers of one request, in arrival order.
///
/// HTTP header names are case-insensitive, and a field may legally appear
/// several times (equivalent to one field with comma-joined values). Both
/// rules live here so no caller ever string-compares names itself.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    fields: Vec<(String, String)>,
}

impl Headers {
    /// An empty header set.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Append one field (parser use, but handy in tests).
    pub fn push(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.fields.push((name.into(), value.into()));
    }

    /// Number of fields (repeated names count each occurrence).
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if no fields were present.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// First value of `name`, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Every value of `name` in arrival order, case-insensitively.
    pub fn all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.fields
            .iter()
            .filter(move |(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Every comma-separated token of every occurrence of `name`, trimmed,
    /// in arrival order — the RFC 9110 §5.2 view in which
    /// `Connection: keep-alive` + `Connection: close` equals
    /// `Connection: keep-alive, close`.
    pub fn tokens<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.all(name)
            .flat_map(|v| v.split(','))
            .map(str::trim)
            .filter(|t| !t.is_empty())
    }

    /// True if any occurrence of `name` carries `token` (case-insensitive
    /// list membership — how `Connection` options are matched).
    pub fn has_token(&self, name: &str, token: &str) -> bool {
        self.tokens(name).any(|t| t.eq_ignore_ascii_case(token))
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET` or `HEAD` (anything else is rejected with 405 by the server).
    pub method: String,
    /// The request target, e.g. `/file/42`.
    pub path: String,
    /// True if the connection should be kept open after the response.
    pub keep_alive: bool,
    /// Every header field, in arrival order.
    pub headers: Headers,
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The peer closed before sending a full request (normal at keep-alive
    /// end-of-session; not an error worth a response).
    ConnectionClosed,
    /// Malformed request line or headers → 400.
    Malformed,
    /// Request head exceeded [`MAX_HEAD_BYTES`] → 400.
    TooLarge,
}

/// Read and parse one request head from `reader`.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, ParseError> {
    let mut head = String::new();
    let mut total = 0usize;

    // Request line.
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Err(ParseError::ConnectionClosed),
        Ok(n) => total += n,
        Err(_) => return Err(ParseError::ConnectionClosed),
    }
    let mut parts = line.split_ascii_whitespace();
    let method = parts.next().ok_or(ParseError::Malformed)?.to_string();
    let path = parts.next().ok_or(ParseError::Malformed)?.to_string();
    let version = parts.next().unwrap_or("HTTP/1.0");
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed);
    }
    let http11 = version == "HTTP/1.1";
    if !path.starts_with('/') {
        return Err(ParseError::Malformed);
    }

    // Headers until the blank line.
    let mut headers = Headers::new();
    loop {
        head.clear();
        match reader.read_line(&mut head) {
            Ok(0) => return Err(ParseError::Malformed), // EOF mid-head
            Ok(n) => total += n,
            Err(_) => return Err(ParseError::Malformed),
        }
        if total > MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge);
        }
        let h = head.trim_end();
        if h.is_empty() {
            break;
        }
        let Some((name, value)) = h.split_once(':') else {
            return Err(ParseError::Malformed);
        };
        headers.push(name.trim(), value.trim());
    }

    // Connection is a comma-separated option list and may be repeated; a
    // `close` anywhere wins over any `keep-alive` (once either side has
    // signalled close, the connection must not persist).
    let keep_alive = if headers.has_token("connection", "close") {
        false
    } else if headers.has_token("connection", "keep-alive") {
        true
    } else {
        http11 // 1.1 defaults to persistent
    };

    Ok(Request {
        method,
        path,
        keep_alive,
        headers,
    })
}

/// Write a response head (and, unless `head_only`, the body) with an
/// `application/octet-stream` content type — what file bodies are.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    body: &[u8],
    keep_alive: bool,
    head_only: bool,
) -> std::io::Result<()> {
    write_response_typed(
        w,
        status,
        reason,
        "application/octet-stream",
        body,
        keep_alive,
        head_only,
    )
}

/// [`write_response`] with an explicit content type (the observability
/// endpoints serve Prometheus text and JSON, not octet streams).
pub fn write_response_typed(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    head_only: bool,
) -> std::io::Result<()> {
    write_response_with(
        w,
        status,
        reason,
        content_type,
        &[],
        body,
        keep_alive,
        head_only,
    )
}

/// The general response writer: explicit content type plus any extra
/// headers (`Content-Range`, `ETag`, `Accept-Ranges`, …). Framing is
/// always `Content-Length`; `head_only` omits the body but keeps its
/// length, as `HEAD` requires.
#[allow(clippy::too_many_arguments)]
pub fn write_response_with(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
    head_only: bool,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Length: {}\r\nContent-Type: {content_type}\r\nConnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    if !head_only {
        w.write_all(body)?;
    }
    w.flush()
}

/// Resolve `/file/<id>` to a file id.
pub fn route_file(path: &str) -> Option<u32> {
    path.strip_prefix("/file/")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(s: &str) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(s.as_bytes()))
    }

    #[test]
    fn parses_get_10() {
        let r = parse("GET /file/7 HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/file/7");
        assert!(!r.keep_alive, "1.0 defaults to close");
        assert!(r.headers.is_empty());
    }

    #[test]
    fn parses_get_11_keepalive_default() {
        let r = parse("GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert!(r.keep_alive, "1.1 defaults to keep-alive");
        assert_eq!(r.headers.get("host"), Some("x"));
    }

    #[test]
    fn connection_header_overrides() {
        let r = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(r.keep_alive);
    }

    #[test]
    fn connection_close_wins_in_token_lists_and_repeats() {
        // Option list: close anywhere forces close, whatever else rides
        // along.
        let r = parse("GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n").unwrap();
        assert!(!r.keep_alive, "close in a token list must win");
        // Repeated field: RFC 9110 treats it as one joined list.
        let r =
            parse("GET / HTTP/1.1\r\nConnection: keep-alive\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive, "close in a repeated field must win");
        // Unrelated tokens don't disturb the version default.
        let r = parse("GET / HTTP/1.1\r\nConnection: TE\r\n\r\n").unwrap();
        assert!(r.keep_alive);
        let r = parse("GET / HTTP/1.0\r\nConnection: TE, keep-alive\r\n\r\n").unwrap();
        assert!(r.keep_alive, "keep-alive token inside a list must count");
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let r = parse("GET / HTTP/1.1\r\nRaNgE: bytes=0-4\r\nHost: h\r\n\r\n").unwrap();
        assert_eq!(r.headers.get("range"), Some("bytes=0-4"));
        assert_eq!(r.headers.get("RANGE"), Some("bytes=0-4"));
        assert_eq!(r.headers.get("Range"), Some("bytes=0-4"));
        assert_eq!(r.headers.get("ranges"), None);
    }

    #[test]
    fn repeated_headers_are_all_kept_in_order() {
        let r = parse("GET / HTTP/1.1\r\nX-Tag: a\r\nOther: o\r\nx-tag: b\r\n\r\n").unwrap();
        let all: Vec<&str> = r.headers.all("X-Tag").collect();
        assert_eq!(all, ["a", "b"], "both occurrences, arrival order");
        assert_eq!(r.headers.get("x-TAG"), Some("a"), "get returns the first");
        let tokens: Vec<&str> = r.headers.tokens("x-tag").collect();
        assert_eq!(tokens, ["a", "b"]);
    }

    #[test]
    fn tokens_split_and_trim_comma_lists() {
        let r = parse("GET / HTTP/1.1\r\nAccept-Encoding: gzip , br,, deflate\r\n\r\n").unwrap();
        let tokens: Vec<&str> = r.headers.tokens("accept-encoding").collect();
        assert_eq!(
            tokens,
            ["gzip", "br", "deflate"],
            "trimmed, empties dropped"
        );
        assert!(r.headers.has_token("accept-encoding", "BR"));
        assert!(!r.headers.has_token("accept-encoding", "zstd"));
    }

    #[test]
    fn malformed_inputs_are_rejected_not_panics() {
        assert_eq!(parse("").unwrap_err(), ParseError::ConnectionClosed);
        assert_eq!(parse("GARBAGE\r\n\r\n").unwrap_err(), ParseError::Malformed);
        assert_eq!(parse("GET\r\n\r\n").unwrap_err(), ParseError::Malformed);
        assert_eq!(
            parse("GET /x SPDY/3\r\n\r\n").unwrap_err(),
            ParseError::Malformed
        );
        assert_eq!(
            parse("GET nopath HTTP/1.1\r\n\r\n").unwrap_err(),
            ParseError::Malformed
        );
        assert_eq!(
            parse("GET / HTTP/1.1\r\nbadheader\r\n\r\n").unwrap_err(),
            ParseError::Malformed
        );
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut s = String::from("GET / HTTP/1.1\r\n");
        for i in 0..1000 {
            s.push_str(&format!("X-Pad-{i}: {}\r\n", "y".repeat(64)));
        }
        s.push_str("\r\n");
        assert_eq!(parse(&s).unwrap_err(), ParseError::TooLarge);
    }

    #[test]
    fn response_has_content_length_framing() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", b"hello", true, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn head_omits_body_but_keeps_length() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", b"hello", false, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("\r\n\r\n"), "no body bytes");
    }

    #[test]
    fn extra_headers_ride_the_head() {
        let mut out = Vec::new();
        write_response_with(
            &mut out,
            206,
            "Partial Content",
            "application/octet-stream",
            &[("Content-Range", "bytes 2-4/10"), ("ETag", "\"f0-10\"")],
            b"abc",
            true,
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 206 Partial Content\r\n"));
        assert!(text.contains("Content-Range: bytes 2-4/10\r\n"));
        assert!(text.contains("ETag: \"f0-10\"\r\n"));
        assert!(text.ends_with("\r\n\r\nabc"));
    }

    #[test]
    fn routing() {
        assert_eq!(route_file("/file/0"), Some(0));
        assert_eq!(route_file("/file/123"), Some(123));
        assert_eq!(route_file("/file/abc"), None);
        assert_eq!(route_file("/files/1"), None);
        assert_eq!(route_file("/"), None);
    }
}
