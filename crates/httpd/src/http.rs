//! Minimal HTTP/1.x request parsing and response writing.
//!
//! Supports exactly what the file server needs: the request line, enough
//! header handling to honor `Connection: keep-alive`/`close`, and
//! `Content-Length`-framed responses. Robust against malformed input (a bad
//! request yields a 400, never a panic) and bounded (oversized request heads
//! are rejected) so the listener can face untrusted bytes.

use std::io::{BufRead, Write};

/// Largest accepted request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET` or `HEAD` (anything else is rejected with 405 by the server).
    pub method: String,
    /// The request target, e.g. `/file/42`.
    pub path: String,
    /// True if the connection should be kept open after the response.
    pub keep_alive: bool,
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The peer closed before sending a full request (normal at keep-alive
    /// end-of-session; not an error worth a response).
    ConnectionClosed,
    /// Malformed request line or headers → 400.
    Malformed,
    /// Request head exceeded [`MAX_HEAD_BYTES`] → 400.
    TooLarge,
}

/// Read and parse one request head from `reader`.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, ParseError> {
    let mut head = String::new();
    let mut total = 0usize;

    // Request line.
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Err(ParseError::ConnectionClosed),
        Ok(n) => total += n,
        Err(_) => return Err(ParseError::ConnectionClosed),
    }
    let mut parts = line.split_ascii_whitespace();
    let method = parts.next().ok_or(ParseError::Malformed)?.to_string();
    let path = parts.next().ok_or(ParseError::Malformed)?.to_string();
    let version = parts.next().unwrap_or("HTTP/1.0");
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed);
    }
    let http11 = version == "HTTP/1.1";
    if !path.starts_with('/') {
        return Err(ParseError::Malformed);
    }

    // Headers until the blank line.
    let mut keep_alive = http11; // 1.1 defaults to persistent
    loop {
        head.clear();
        match reader.read_line(&mut head) {
            Ok(0) => return Err(ParseError::Malformed), // EOF mid-head
            Ok(n) => total += n,
            Err(_) => return Err(ParseError::Malformed),
        }
        if total > MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge);
        }
        let h = head.trim_end();
        if h.is_empty() {
            break;
        }
        let Some((name, value)) = h.split_once(':') else {
            return Err(ParseError::Malformed);
        };
        if name.trim().eq_ignore_ascii_case("connection") {
            match value.trim().to_ascii_lowercase().as_str() {
                "keep-alive" => keep_alive = true,
                "close" => keep_alive = false,
                _ => {}
            }
        }
    }

    Ok(Request {
        method,
        path,
        keep_alive,
    })
}

/// Write a response head (and, unless `head_only`, the body) with an
/// `application/octet-stream` content type — what file bodies are.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    body: &[u8],
    keep_alive: bool,
    head_only: bool,
) -> std::io::Result<()> {
    write_response_typed(
        w,
        status,
        reason,
        "application/octet-stream",
        body,
        keep_alive,
        head_only,
    )
}

/// [`write_response`] with an explicit content type (the observability
/// endpoints serve Prometheus text and JSON, not octet streams).
pub fn write_response_typed(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    head_only: bool,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Length: {}\r\nContent-Type: {content_type}\r\nConnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    if !head_only {
        w.write_all(body)?;
    }
    w.flush()
}

/// Resolve `/file/<id>` to a file id.
pub fn route_file(path: &str) -> Option<u32> {
    path.strip_prefix("/file/")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(s: &str) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(s.as_bytes()))
    }

    #[test]
    fn parses_get_10() {
        let r = parse("GET /file/7 HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/file/7");
        assert!(!r.keep_alive, "1.0 defaults to close");
    }

    #[test]
    fn parses_get_11_keepalive_default() {
        let r = parse("GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert!(r.keep_alive, "1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_header_overrides() {
        let r = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(r.keep_alive);
    }

    #[test]
    fn malformed_inputs_are_rejected_not_panics() {
        assert_eq!(parse("").unwrap_err(), ParseError::ConnectionClosed);
        assert_eq!(parse("GARBAGE\r\n\r\n").unwrap_err(), ParseError::Malformed);
        assert_eq!(parse("GET\r\n\r\n").unwrap_err(), ParseError::Malformed);
        assert_eq!(
            parse("GET /x SPDY/3\r\n\r\n").unwrap_err(),
            ParseError::Malformed
        );
        assert_eq!(
            parse("GET nopath HTTP/1.1\r\n\r\n").unwrap_err(),
            ParseError::Malformed
        );
        assert_eq!(
            parse("GET / HTTP/1.1\r\nbadheader\r\n\r\n").unwrap_err(),
            ParseError::Malformed
        );
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut s = String::from("GET / HTTP/1.1\r\n");
        for i in 0..1000 {
            s.push_str(&format!("X-Pad-{i}: {}\r\n", "y".repeat(64)));
        }
        s.push_str("\r\n");
        assert_eq!(parse(&s).unwrap_err(), ParseError::TooLarge);
    }

    #[test]
    fn response_has_content_length_framing() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", b"hello", true, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn head_omits_body_but_keeps_length() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", b"hello", false, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("\r\n\r\n"), "no body bytes");
    }

    #[test]
    fn routing() {
        assert_eq!(route_file("/file/0"), Some(0));
        assert_eq!(route_file("/file/123"), Some(123));
        assert_eq!(route_file("/file/abc"), None);
        assert_eq!(route_file("/files/1"), None);
        assert_eq!(route_file("/"), None);
    }
}
