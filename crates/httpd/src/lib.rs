//! # ccm-httpd — a web server on the cooperative caching middleware
//!
//! The paper's motivating application is "an off-the-shelf web server"
//! stacked on the generic caching layer plus round-robin DNS (§7). This
//! crate is that stack, runnable: a small HTTP/1.x static-file server whose
//! every read goes through `ccm-rt`'s cooperative cache. One process hosts
//! the whole cluster — each node is a middleware service thread *plus* a TCP
//! listener on its own port (the per-node address a round-robin DNS would
//! hand out).
//!
//! Scope: `GET`/`HEAD` of catalog files at `/file/<id>`, HTTP/1.0 and 1.1
//! with keep-alive, `Content-Length` framing. Nothing more — it exists to
//! demonstrate and test the middleware under a real socket workload, not to
//! be a general web server.
//!
//! * [`http`] — request parsing and response writing.
//! * [`server`] — per-node listeners and the cluster front end.
//! * [`client`] — a tiny blocking HTTP client and load generator used by the
//!   tests and examples.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod server;

pub use client::{get, LoadReport};
pub use server::HttpCluster;
