//! Per-node HTTP listeners over one middleware cluster.
//!
//! [`HttpCluster::start`] spawns the `ccm-rt` middleware plus one TCP
//! listener per node on loopback ephemeral ports — the addresses a
//! round-robin DNS would rotate through. Every `GET /file/<id>` is served
//! through that node's [`NodeHandle`], so cache cooperation (remote hits,
//! master forwarding) happens underneath real socket traffic.
//!
//! Connections are handled thread-per-connection with keep-alive; shutdown
//! closes the listeners and joins every worker.
//!
//! Besides `/file/<id>`, every node serves two observability endpoints:
//! `GET /metrics` (the cluster registry in Prometheus text exposition) and
//! `GET /debug/trace` (the block-path trace ring as JSON). In one process
//! all nodes share one registry, so any node's `/metrics` shows the whole
//! cluster — exactly what a scraper pointed at round-robin DNS would see.

use crate::http::{read_request, route_file, write_response, write_response_typed, ParseError};
use ccm_core::{FileId, NodeId};
use ccm_obs::{Counter, Gauge, Histogram, Registry, Stopwatch};
use ccm_rt::{BlockStore, Catalog, Middleware, NodeHandle, RtConfig, Transport};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running HTTP cluster.
pub struct HttpCluster {
    middleware: Arc<Middleware>,
    addrs: Vec<SocketAddr>,
    stop: Arc<AtomicBool>,
    acceptors: Vec<JoinHandle<()>>,
}

/// Response status classes tallied per node (3xx never occurs here).
const STATUS_CLASSES: [&str; 3] = ["2xx", "4xx", "5xx"];

/// Per-node HTTP-layer metric handles.
struct HttpObs {
    latency_ns: Histogram,
    inflight: Gauge,
    responses: [Counter; 3], // indexed like STATUS_CLASSES
}

impl HttpObs {
    fn new(registry: &Registry, node: NodeId) -> HttpObs {
        let n = node.index().to_string();
        HttpObs {
            latency_ns: registry.histogram(
                "ccm_http_request_latency_ns",
                "Request handling latency, parse to response written",
                &[("node", n.as_str())],
            ),
            inflight: registry.gauge(
                "ccm_http_inflight",
                "Requests currently being handled",
                &[("node", n.as_str())],
            ),
            responses: STATUS_CLASSES.map(|class| {
                registry.counter(
                    "ccm_http_responses_total",
                    "Responses written, by status class",
                    &[("node", n.as_str()), ("status", class)],
                )
            }),
        }
    }

    fn count(&self, status: u16) {
        let idx = match status / 100 {
            2 => 0,
            4 => 1,
            _ => 2,
        };
        self.responses[idx].inc();
    }
}

/// Everything one node's connection workers need.
struct NodeCtx {
    handle: NodeHandle,
    catalog: Catalog,
    middleware: Arc<Middleware>,
    obs: HttpObs,
}

fn serve_connection(stream: TcpStream, ctx: &NodeCtx) {
    // Keep slow clients from pinning worker threads forever, and avoid
    // Nagle/delayed-ACK stalls on small request/response exchanges.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        let req = match read_request(&mut reader) {
            Ok(r) => r,
            Err(ParseError::ConnectionClosed) => return,
            Err(_) => {
                let _ = write_response(&mut writer, 400, "Bad Request", b"", false, false);
                ctx.obs.count(400);
                return;
            }
        };
        let sw = Stopwatch::start();
        ctx.obs.inflight.adjust(1);
        let (ok, status) = handle_request(&mut writer, &req, ctx);
        ctx.obs.inflight.adjust(-1);
        sw.stop(&ctx.obs.latency_ns);
        ctx.obs.count(status);
        if ok.is_err() || !req.keep_alive {
            return;
        }
    }
}

/// Dispatch one parsed request and write its response; returns the write
/// result and the status code for accounting.
fn handle_request(
    writer: &mut TcpStream,
    req: &crate::http::Request,
    ctx: &NodeCtx,
) -> (std::io::Result<()>, u16) {
    let head_only = match req.method.as_str() {
        "GET" => false,
        "HEAD" => true,
        _ => {
            let ok = write_response(
                writer,
                405,
                "Method Not Allowed",
                b"",
                req.keep_alive,
                false,
            );
            return (ok, 405);
        }
    };
    match req.path.as_str() {
        "/metrics" => {
            let body = ccm_obs::prom::render(&ctx.middleware.obs_snapshot());
            let ok = write_response_typed(
                writer,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                body.as_bytes(),
                req.keep_alive,
                head_only,
            );
            (ok, 200)
        }
        "/debug/trace" => {
            let body = ctx.middleware.trace().dump_json();
            let ok = write_response_typed(
                writer,
                200,
                "OK",
                "application/json",
                body.as_bytes(),
                req.keep_alive,
                head_only,
            );
            (ok, 200)
        }
        path => {
            let response = route_file(path)
                .filter(|&id| (id as usize) < ctx.catalog.num_files())
                .map(|id| ctx.handle.read_file(FileId(id)));
            match response {
                Some(body) => (
                    write_response(writer, 200, "OK", &body, req.keep_alive, head_only),
                    200,
                ),
                None => (
                    write_response(
                        writer,
                        404,
                        "Not Found",
                        b"no such file",
                        req.keep_alive,
                        head_only,
                    ),
                    404,
                ),
            }
        }
    }
}

impl HttpCluster {
    /// Start the middleware and one listener per node on loopback ephemeral
    /// ports.
    ///
    /// # Panics
    /// Panics if a loopback socket cannot be bound (no such environment is
    /// supported).
    pub fn start(cfg: RtConfig, catalog: Catalog, store: Arc<dyn BlockStore>) -> HttpCluster {
        let middleware = Middleware::start(cfg, catalog.clone(), store);
        HttpCluster::over(middleware, catalog)
    }

    /// Like [`HttpCluster::start`], but with the peer LAN supplied by the
    /// caller — e.g. `ccm-net`'s `TcpLan` for a cluster whose cache
    /// cooperation runs over real sockets, not in-process channels. The
    /// HTTP layer is identical either way; only the transport underneath
    /// the middleware changes.
    ///
    /// # Panics
    /// Panics if a loopback socket cannot be bound, or if `transport` does
    /// not match `cfg.nodes`.
    pub fn start_on(
        cfg: RtConfig,
        catalog: Catalog,
        store: Arc<dyn BlockStore>,
        transport: Arc<dyn Transport>,
    ) -> HttpCluster {
        let middleware = Middleware::start_on(cfg, catalog.clone(), store, transport);
        HttpCluster::over(middleware, catalog)
    }

    /// Spawn the per-node HTTP listeners over an already-running cluster.
    fn over(middleware: Middleware, catalog: Catalog) -> HttpCluster {
        let nodes = middleware.nodes();
        let middleware = Arc::new(middleware);
        let stop = Arc::new(AtomicBool::new(false));
        let mut addrs = Vec::with_capacity(nodes);
        let mut acceptors = Vec::with_capacity(nodes);

        for n in 0..nodes {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            addrs.push(listener.local_addr().expect("local addr"));
            let node = NodeId(n as u16);
            let ctx = NodeCtx {
                handle: middleware.handle(node),
                catalog: catalog.clone(),
                middleware: middleware.clone(),
                obs: HttpObs::new(middleware.registry(), node),
            };
            let stop = stop.clone();
            acceptors.push(
                std::thread::Builder::new()
                    .name(format!("httpd-node-{n}"))
                    .spawn(move || accept_loop(listener, ctx, stop))
                    .expect("spawn acceptor"),
            );
        }
        HttpCluster {
            middleware,
            addrs,
            stop,
            acceptors,
        }
    }

    /// The per-node addresses (what round-robin DNS would rotate through).
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The middleware underneath (stats, invariants).
    pub fn middleware(&self) -> &Middleware {
        &self.middleware
    }

    /// Stop accepting, drain workers, and shut the middleware down.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge each acceptor out of `accept()` with a no-op connection.
        for &addr in &self.addrs {
            let _ = TcpStream::connect(addr);
        }
        for a in self.acceptors.drain(..) {
            let _ = a.join();
        }
        match Arc::try_unwrap(self.middleware) {
            Ok(mw) => mw.shutdown(),
            Err(_) => { /* a handle outlived us; Drop will clean up */ }
        }
    }
}

fn accept_loop(listener: TcpListener, ctx: NodeCtx, stop: Arc<AtomicBool>) {
    let ctx = Arc::new(ctx);
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let ctx = ctx.clone();
        workers.push(
            std::thread::Builder::new()
                .name("httpd-conn".into())
                .spawn(move || serve_connection(stream, &ctx))
                .expect("spawn worker"),
        );
        // Opportunistically reap finished workers to bound the vector.
        workers.retain(|w| !w.is_finished());
    }
    for w in workers {
        let _ = w.join();
    }
}
