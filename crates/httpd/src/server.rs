//! Per-node HTTP listeners over one middleware cluster.
//!
//! [`HttpCluster::start`] spawns the `ccm-rt` middleware plus one TCP
//! listener per node on loopback ephemeral ports — the addresses a
//! round-robin DNS would rotate through. Every `GET /file/<id>` is served
//! through that node's [`NodeHandle`], so cache cooperation (remote hits,
//! master forwarding) happens underneath real socket traffic.
//!
//! Connections are handled thread-per-connection with keep-alive; shutdown
//! closes the listeners and joins every worker.

use crate::http::{read_request, route_file, write_response, ParseError};
use ccm_core::{FileId, NodeId};
use ccm_rt::{BlockStore, Catalog, Middleware, NodeHandle, RtConfig, Transport};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running HTTP cluster.
pub struct HttpCluster {
    middleware: Arc<Middleware>,
    addrs: Vec<SocketAddr>,
    stop: Arc<AtomicBool>,
    acceptors: Vec<JoinHandle<()>>,
}

fn serve_connection(stream: TcpStream, handle: &NodeHandle, catalog: &Catalog) {
    // Keep slow clients from pinning worker threads forever, and avoid
    // Nagle/delayed-ACK stalls on small request/response exchanges.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        let req = match read_request(&mut reader) {
            Ok(r) => r,
            Err(ParseError::ConnectionClosed) => return,
            Err(_) => {
                let _ = write_response(&mut writer, 400, "Bad Request", b"", false, false);
                return;
            }
        };
        let head_only = match req.method.as_str() {
            "GET" => false,
            "HEAD" => true,
            _ => {
                let ok = write_response(
                    &mut writer,
                    405,
                    "Method Not Allowed",
                    b"",
                    req.keep_alive,
                    false,
                );
                if ok.is_err() || !req.keep_alive {
                    return;
                }
                continue;
            }
        };
        let response = route_file(&req.path)
            .filter(|&id| (id as usize) < catalog.num_files())
            .map(|id| handle.read_file(FileId(id)));
        let ok = match response {
            Some(body) => write_response(&mut writer, 200, "OK", &body, req.keep_alive, head_only),
            None => write_response(
                &mut writer,
                404,
                "Not Found",
                b"no such file",
                req.keep_alive,
                head_only,
            ),
        };
        if ok.is_err() || !req.keep_alive {
            return;
        }
    }
}

impl HttpCluster {
    /// Start the middleware and one listener per node on loopback ephemeral
    /// ports.
    ///
    /// # Panics
    /// Panics if a loopback socket cannot be bound (no such environment is
    /// supported).
    pub fn start(cfg: RtConfig, catalog: Catalog, store: Arc<dyn BlockStore>) -> HttpCluster {
        let middleware = Middleware::start(cfg, catalog.clone(), store);
        HttpCluster::over(middleware, catalog)
    }

    /// Like [`HttpCluster::start`], but with the peer LAN supplied by the
    /// caller — e.g. `ccm-net`'s `TcpLan` for a cluster whose cache
    /// cooperation runs over real sockets, not in-process channels. The
    /// HTTP layer is identical either way; only the transport underneath
    /// the middleware changes.
    ///
    /// # Panics
    /// Panics if a loopback socket cannot be bound, or if `transport` does
    /// not match `cfg.nodes`.
    pub fn start_on(
        cfg: RtConfig,
        catalog: Catalog,
        store: Arc<dyn BlockStore>,
        transport: Arc<dyn Transport>,
    ) -> HttpCluster {
        let middleware = Middleware::start_on(cfg, catalog.clone(), store, transport);
        HttpCluster::over(middleware, catalog)
    }

    /// Spawn the per-node HTTP listeners over an already-running cluster.
    fn over(middleware: Middleware, catalog: Catalog) -> HttpCluster {
        let nodes = middleware.nodes();
        let middleware = Arc::new(middleware);
        let stop = Arc::new(AtomicBool::new(false));
        let mut addrs = Vec::with_capacity(nodes);
        let mut acceptors = Vec::with_capacity(nodes);

        for n in 0..nodes {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            addrs.push(listener.local_addr().expect("local addr"));
            let handle = middleware.handle(NodeId(n as u16));
            let catalog = catalog.clone();
            let stop = stop.clone();
            acceptors.push(
                std::thread::Builder::new()
                    .name(format!("httpd-node-{n}"))
                    .spawn(move || accept_loop(listener, handle, catalog, stop))
                    .expect("spawn acceptor"),
            );
        }
        HttpCluster {
            middleware,
            addrs,
            stop,
            acceptors,
        }
    }

    /// The per-node addresses (what round-robin DNS would rotate through).
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The middleware underneath (stats, invariants).
    pub fn middleware(&self) -> &Middleware {
        &self.middleware
    }

    /// Stop accepting, drain workers, and shut the middleware down.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge each acceptor out of `accept()` with a no-op connection.
        for &addr in &self.addrs {
            let _ = TcpStream::connect(addr);
        }
        for a in self.acceptors.drain(..) {
            let _ = a.join();
        }
        match Arc::try_unwrap(self.middleware) {
            Ok(mw) => mw.shutdown(),
            Err(_) => { /* a handle outlived us; Drop will clean up */ }
        }
    }
}

fn accept_loop(listener: TcpListener, handle: NodeHandle, catalog: Catalog, stop: Arc<AtomicBool>) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let handle = handle.clone();
        let catalog = catalog.clone();
        workers.push(
            std::thread::Builder::new()
                .name("httpd-conn".into())
                .spawn(move || serve_connection(stream, &handle, &catalog))
                .expect("spawn worker"),
        );
        // Opportunistically reap finished workers to bound the vector.
        workers.retain(|w| !w.is_finished());
    }
    for w in workers {
        let _ = w.join();
    }
}
