//! The HTTP front end over the `ccm-net` TCP peer transport: sockets in
//! front of the cluster *and* sockets between the nodes. The HTTP layer
//! is byte-for-byte the one the channel-LAN tests exercise; these tests
//! pin that the swap of the peer transport underneath is invisible.

use ccm_core::{BlockId, FileId, NodeId, ReplacementPolicy};
use ccm_httpd::client::{get, load_run};
use ccm_httpd::HttpCluster;
use ccm_net::TcpLan;
use ccm_rt::{Catalog, MemStore, RtConfig, SyntheticStore};
use std::sync::Arc;

fn start_tcp(nodes: usize, files: usize, size: u64, cap: usize) -> (HttpCluster, Catalog) {
    let catalog = Catalog::new(vec![size; files]);
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 42));
    let lan = Arc::new(TcpLan::loopback(nodes).expect("bind peer listeners"));
    let cluster = HttpCluster::start_on(
        RtConfig {
            nodes,
            capacity_blocks: cap,
            policy: ReplacementPolicy::MasterPreserving,
            ..RtConfig::default()
        },
        catalog.clone(),
        store,
        lan,
    );
    (cluster, catalog)
}

fn expected_body(catalog: &Catalog, id: u32) -> Vec<u8> {
    let store = SyntheticStore::new(catalog.clone(), 42);
    ccm_rt::store::read_file_direct(&store, catalog, FileId(id))
}

/// Cross-node cooperation rides the TCP peer transport: warm a file on one
/// node, fetch it through the others, and the remote hits must have
/// crossed the wire.
#[test]
fn http_over_tcp_peers_serves_exact_bytes() {
    let (cluster, catalog) = start_tcp(3, 2, 30_000, 64);
    get(cluster.addrs()[0], "/file/0").unwrap();
    for n in 1..3 {
        let r = get(cluster.addrs()[n], "/file/0").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, expected_body(&catalog, 0), "node {n} corrupted");
    }
    let s = cluster.middleware().stats();
    assert!(s.remote_hits > 0, "peer fetches should have used the wire");
    cluster.middleware().check_invariants();
    cluster.shutdown();
}

/// Concurrent HTTP load with the peer traffic on sockets: every response
/// exact, no failures, invariants intact.
#[test]
fn concurrent_load_over_tcp_peers_is_correct() {
    let (cluster, catalog) = start_tcp(4, 24, 16_000, 48);
    let check_catalog = catalog.clone();
    let report = load_run(cluster.addrs(), 24, 8, 100, move |id, body| {
        body == expected_body(&check_catalog, id)
    });
    assert_eq!(report.failed, 0, "{report:?}");
    assert_eq!(report.ok, 800);
    cluster.middleware().check_invariants();
    cluster.shutdown();
}

/// Write invalidations travel the wire: a write on one node must
/// invalidate the replica a peer acquired earlier, so the peer's next
/// HTTP response serves the new bytes, not its stale copy.
#[test]
fn writes_invalidate_replicas_over_tcp_peers() {
    let catalog = Catalog::new(vec![16_384u64; 4]);
    let store = Arc::new(MemStore::new(catalog.clone(), 7));
    let lan = Arc::new(TcpLan::loopback(2).expect("bind peer listeners"));
    let cluster = HttpCluster::start_on(
        RtConfig {
            nodes: 2,
            capacity_blocks: 32,
            policy: ReplacementPolicy::MasterPreserving,
            ..RtConfig::default()
        },
        catalog.clone(),
        store,
        lan,
    );
    get(cluster.addrs()[0], "/file/0").unwrap();
    get(cluster.addrs()[1], "/file/0").unwrap(); // node 1 now holds a replica
    let payload = vec![0x5A; 8_192];
    cluster
        .middleware()
        .handle(NodeId(0))
        .write_block(BlockId::new(FileId(0), 0), &payload)
        .unwrap();
    cluster.middleware().quiesce(); // drain the Invalidate frames
    for n in 0..2 {
        let r = get(cluster.addrs()[n], "/file/0").unwrap();
        assert_eq!(&r.body[..8_192], &payload[..], "node {n} served stale data");
    }
    cluster.shutdown();
}
