//! The two observability endpoints, exercised over real sockets: a scrape
//! of `/metrics` must parse as Prometheus text and carry the cache,
//! transport-facing, and HTTP families; `/debug/trace` must return the
//! block-path ring as JSON.

#![cfg(not(feature = "obs-off"))]

use ccm_core::ReplacementPolicy;
use ccm_httpd::client::get;
use ccm_httpd::HttpCluster;
use ccm_obs::prom::parse;
use ccm_rt::{Catalog, RtConfig, SyntheticStore};
use std::collections::BTreeSet;
use std::sync::Arc;

fn start(nodes: usize) -> HttpCluster {
    let catalog = Catalog::new(vec![20_000u64; 6]);
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 42));
    HttpCluster::start(
        RtConfig {
            nodes,
            capacity_blocks: 64,
            policy: ReplacementPolicy::MasterPreserving,
            ..RtConfig::default()
        },
        catalog,
        store,
    )
}

#[test]
fn metrics_scrape_parses_and_reflects_traffic() {
    let cluster = start(2);
    // Warm on node 0, then read through node 1: that makes local, disk,
    // and remote classes all non-zero somewhere in the cluster.
    for f in 0..6 {
        assert_eq!(
            get(cluster.addrs()[0], &format!("/file/{f}"))
                .unwrap()
                .status,
            200
        );
    }
    for f in 0..6 {
        assert_eq!(
            get(cluster.addrs()[1], &format!("/file/{f}"))
                .unwrap()
                .status,
            200
        );
    }

    let r = get(cluster.addrs()[1], "/metrics").unwrap();
    assert_eq!(r.status, 200);
    let text = String::from_utf8(r.body).expect("metrics page is UTF-8");
    let samples = parse(&text).expect("page must parse as Prometheus text");

    let names: BTreeSet<&str> = samples.iter().map(|s| s.name.as_str()).collect();
    for family in [
        "ccm_rt_reads_total",
        "ccm_rt_fetch_latency_ns_bucket",
        "ccm_rt_store_blocks",
        "ccm_http_request_latency_ns_bucket",
        "ccm_http_responses_total",
        "ccm_http_inflight",
        // The per-node disk services report into the same registry.
        "ccm_disk_requests_total",
        "ccm_disk_reads_total",
        "ccm_disk_read_latency_ns_bucket",
        "ccm_disk_queue_depth",
        // Hint-directory and membership families are always registered —
        // zero under the perfect directory, but present on every scrape.
        "ccm_rt_hint_hits_total",
        "ccm_rt_hint_stale_total",
        "ccm_rt_hint_forward_hops_total",
        "ccm_rt_epoch",
    ] {
        assert!(names.contains(family), "scrape missing {family}:\n{text}");
    }

    // The warm-up misses above were physical demand reads through node 0's
    // disk service, labeled with the node that owns the queue.
    let disk_demand: f64 = samples
        .iter()
        .filter(|s| {
            s.name == "ccm_disk_reads_total"
                && s.label("kind") == Some("demand")
                && s.label("node") == Some("0")
        })
        .map(|s| s.value)
        .sum();
    assert!(
        disk_demand > 0.0,
        "node 0's disk service must have served the warm-up misses"
    );

    // Every HTTP request made above (the scrape itself is counted after it
    // renders, so it is not in its own page) appears in the 2xx counters.
    let ok_responses: f64 = samples
        .iter()
        .filter(|s| s.name == "ccm_http_responses_total" && s.label("status") == Some("2xx"))
        .map(|s| s.value)
        .sum();
    assert!(
        ok_responses >= 12.0,
        "expected ≥12 2xx responses, saw {ok_responses}"
    );

    // The single process shares one registry, so both nodes' series are on
    // the one page — including a remote hit recorded under node 1.
    let remote = samples
        .iter()
        .find(|s| {
            s.name == "ccm_rt_reads_total"
                && s.label("class") == Some("remote")
                && s.label("node") == Some("1")
        })
        .expect("remote-hit series for node 1");
    assert!(remote.value > 0.0, "node 1 reads must include remote hits");
    cluster.shutdown();
}

#[test]
fn debug_trace_returns_ring_as_json() {
    let cluster = start(2);
    get(cluster.addrs()[0], "/file/0").unwrap();
    get(cluster.addrs()[1], "/file/0").unwrap();

    let r = get(cluster.addrs()[0], "/debug/trace").unwrap();
    assert_eq!(r.status, 200);
    let body = String::from_utf8(r.body).expect("trace dump is UTF-8");
    assert!(body.starts_with("{\"capacity\":"), "got: {body:.80}");
    // The reads above must have left dispatch and serve hops in the ring,
    // and the cross-node read a peer fetch.
    for hop in ["\"dispatch\"", "\"serve\"", "\"peer_fetch\""] {
        assert!(body.contains(hop), "trace dump missing {hop} hop:\n{body}");
    }
    cluster.shutdown();
}
