//! Property tests for the HTTP request parser: it faces untrusted bytes and
//! must never panic, never over-read, and must round-trip everything the
//! server itself emits.

use ccm_httpd::http::{read_request, write_response, ParseError, MAX_HEAD_BYTES};
use proptest::prelude::*;
use std::io::BufReader;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes never panic the parser.
    #[test]
    fn arbitrary_bytes_never_panic(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let mut reader = BufReader::new(&data[..]);
        let _ = read_request(&mut reader);
    }

    /// Arbitrary *lines* (the adversary speaks line-oriented gibberish)
    /// never panic and never yield a request with an empty method or a
    /// non-absolute path.
    #[test]
    fn line_gibberish_is_rejected_or_sane(
        lines in prop::collection::vec("[ -~]{0,80}", 0..12),
    ) {
        let text = lines.join("\r\n") + "\r\n\r\n";
        let mut reader = BufReader::new(text.as_bytes());
        if let Ok(req) = read_request(&mut reader) {
            prop_assert!(!req.method.is_empty());
            prop_assert!(req.path.starts_with('/'));
        }
    }

    /// Well-formed requests always parse, with the fields we sent.
    #[test]
    fn well_formed_requests_round_trip(
        path in "/[a-zA-Z0-9/_.-]{0,40}",
        http11 in any::<bool>(),
        keep in prop::option::of(any::<bool>()),
        extra_headers in prop::collection::vec(("[A-Za-z-]{1,16}", "[ -~&&[^:]]{0,30}"), 0..5),
    ) {
        let version = if http11 { "HTTP/1.1" } else { "HTTP/1.0" };
        let mut text = format!("GET {path} {version}\r\n");
        for (name, value) in &extra_headers {
            // Avoid colliding with the Connection header under test.
            if !name.eq_ignore_ascii_case("connection") {
                text.push_str(&format!("{name}: {value}\r\n"));
            }
        }
        if let Some(k) = keep {
            text.push_str(if k {
                "Connection: keep-alive\r\n"
            } else {
                "Connection: close\r\n"
            });
        }
        text.push_str("\r\n");
        let mut reader = BufReader::new(text.as_bytes());
        let req = read_request(&mut reader).expect("well-formed request");
        prop_assert_eq!(req.method.as_str(), "GET");
        prop_assert_eq!(req.path.as_str(), path.as_str());
        let expected_keep = keep.unwrap_or(http11);
        prop_assert_eq!(req.keep_alive, expected_keep);
    }

    /// The head-size bound is enforced for any oversized input.
    #[test]
    fn oversized_heads_are_bounded(pad in MAX_HEAD_BYTES..MAX_HEAD_BYTES * 2) {
        let mut text = String::from("GET / HTTP/1.1\r\n");
        while text.len() < pad {
            text.push_str("X-Filler: yyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyy\r\n");
        }
        text.push_str("\r\n");
        let mut reader = BufReader::new(text.as_bytes());
        prop_assert_eq!(read_request(&mut reader).unwrap_err(), ParseError::TooLarge);
    }

    /// Every response the server writes is parseable by the client
    /// machinery and frames the body exactly.
    #[test]
    fn responses_frame_bodies_exactly(
        status in 100u16..600,
        body in prop::collection::vec(any::<u8>(), 0..2048),
        keep in any::<bool>(),
    ) {
        let mut wire = Vec::new();
        write_response(&mut wire, status, "X", &body, keep, false).unwrap();
        // Reparse: headers end at the first CRLFCRLF; Content-Length matches.
        let head_end = wire.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        let head = String::from_utf8_lossy(&wire[..head_end]);
        let expected_start = format!("HTTP/1.1 {status} ");
        prop_assert!(head.starts_with(&expected_start));
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        prop_assert_eq!(len, body.len());
        prop_assert_eq!(&wire[head_end..], &body[..]);
    }
}
