//! End-to-end HTTP tests: real sockets, real bytes, cooperative cache
//! underneath.

use ccm_core::{BlockId, FileId, NodeId, ReplacementPolicy};
use ccm_httpd::client::{get, head, load_run, KeepAlive};
use ccm_httpd::HttpCluster;
use ccm_rt::{Catalog, MemStore, RtConfig, SyntheticStore};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

fn start(nodes: usize, files: usize, size: u64, cap: usize) -> (HttpCluster, Catalog) {
    let catalog = Catalog::new(vec![size; files]);
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 42));
    let cluster = HttpCluster::start(
        RtConfig {
            nodes,
            capacity_blocks: cap,
            policy: ReplacementPolicy::MasterPreserving,
            ..RtConfig::default()
        },
        catalog.clone(),
        store,
    );
    (cluster, catalog)
}

fn expected_body(catalog: &Catalog, id: u32) -> Vec<u8> {
    let store = SyntheticStore::new(catalog.clone(), 42);
    ccm_rt::store::read_file_direct(&store, catalog, FileId(id))
}

#[test]
fn get_serves_exact_bytes() {
    let (cluster, catalog) = start(2, 4, 20_000, 64);
    for (i, &addr) in cluster.addrs().iter().enumerate() {
        let r = get(addr, &format!("/file/{i}")).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, expected_body(&catalog, i as u32));
    }
    cluster.shutdown();
}

#[test]
fn cross_node_requests_cooperate() {
    let (cluster, catalog) = start(3, 2, 30_000, 64);
    // Warm file 0 on node 0, then fetch it via node 1 and node 2.
    get(cluster.addrs()[0], "/file/0").unwrap();
    for n in 1..3 {
        let r = get(cluster.addrs()[n], "/file/0").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, expected_body(&catalog, 0));
    }
    let s = cluster.middleware().stats();
    assert!(s.remote_hits > 0, "peer fetches should have happened");
    cluster.shutdown();
}

#[test]
fn missing_and_malformed_requests() {
    let (cluster, _) = start(1, 2, 10_000, 32);
    let addr = cluster.addrs()[0];

    let r = get(addr, "/file/99").unwrap();
    assert_eq!(r.status, 404);
    let r = get(addr, "/nonsense").unwrap();
    assert_eq!(r.status, 404);

    // Raw garbage → 400 (and no panic server-side).
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"NOT HTTP AT ALL\r\n\r\n").unwrap();
    let mut buf = Vec::new();
    use std::io::Read;
    stream.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf);
    assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");

    // Unsupported method → 405.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"POST /file/0 HTTP/1.0\r\n\r\n").unwrap();
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).unwrap();
    assert!(String::from_utf8_lossy(&buf).starts_with("HTTP/1.1 405"));

    cluster.shutdown();
}

#[test]
fn head_returns_length_without_body() {
    let (cluster, _) = start(1, 1, 12_345, 32);
    let r = head(cluster.addrs()[0], "/file/0").unwrap();
    assert_eq!(r.status, 200);
    assert!(r.body.is_empty());
    cluster.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_per_connection() {
    let (cluster, catalog) = start(2, 6, 15_000, 64);
    let mut conn = KeepAlive::connect(cluster.addrs()[1]).unwrap();
    for round in 0..3 {
        for f in 0..6u32 {
            let r = conn.get(&format!("/file/{f}")).unwrap();
            assert_eq!(r.status, 200, "round {round} file {f}");
            assert_eq!(r.body, expected_body(&catalog, f));
        }
    }
    cluster.shutdown();
}

#[test]
fn concurrent_load_is_correct() {
    let (cluster, catalog) = start(4, 24, 16_000, 48);
    let check_catalog = catalog.clone();
    let report = load_run(cluster.addrs(), 24, 8, 100, move |id, body| {
        body == expected_body(&check_catalog, id)
    });
    assert_eq!(report.failed, 0, "{report:?}");
    assert_eq!(report.ok, 800);
    let s = cluster.middleware().stats();
    assert!(s.accesses() > 0);
    cluster.middleware().check_invariants();
    cluster.shutdown();
}

#[test]
fn writes_show_up_over_http() {
    let catalog = Catalog::new(vec![16_384u64; 4]);
    let store = Arc::new(MemStore::new(catalog.clone(), 7));
    let cluster = HttpCluster::start(
        RtConfig {
            nodes: 2,
            capacity_blocks: 32,
            policy: ReplacementPolicy::MasterPreserving,
            ..RtConfig::default()
        },
        catalog.clone(),
        store,
    );
    // Warm via HTTP on both nodes.
    get(cluster.addrs()[0], "/file/0").unwrap();
    get(cluster.addrs()[1], "/file/0").unwrap();
    // Write through the middleware API (the HTTP surface is read-only).
    let payload = vec![0x5A; 8_192];
    cluster
        .middleware()
        .handle(NodeId(0))
        .write_block(BlockId::new(FileId(0), 0), &payload)
        .unwrap();
    // Both HTTP fronts serve the new content.
    for n in 0..2 {
        let r = get(cluster.addrs()[n], "/file/0").unwrap();
        assert_eq!(&r.body[..8_192], &payload[..], "node {n} served stale data");
    }
    cluster.shutdown();
}

#[test]
fn shutdown_is_clean_under_open_connections() {
    let (cluster, _) = start(2, 2, 10_000, 32);
    // Leave a dangling idle connection open during shutdown.
    let _idle = TcpStream::connect(cluster.addrs()[0]).unwrap();
    get(cluster.addrs()[1], "/file/1").unwrap();
    cluster.shutdown(); // must not hang or panic
}
