//! The membership-churn torture battery: the hint-based directory and the
//! dynamic membership machinery must survive seeded join/leave/crash
//! schedules interleaved with the paper's trace workloads.
//!
//! Oracles, in order of appearance:
//!
//! * **Byte integrity** — every byte delivered during churn equals the
//!   catalog ground truth (asserted inside [`run_churn_torture`] on every
//!   read), across all four trace presets and both LAN backends.
//! * **Replayability** — the same `(seed, plan, workload)` triple produces
//!   a bit-identical [`ChurnOutcome`] across reruns *and* across backends:
//!   digest, protocol counters, hint-accuracy counters, and final epoch.
//! * **Convergence** — after any seeded schedule the quiescent-state audit
//!   (run inside the driver) proves every block has exactly one master and
//!   every stale hint is corrected within one forwarding chain.
//! * **Join transparency** — a node joining a 32-node cluster mid-run
//!   absorbs re-mastered blocks and the delivered-byte digest matches the
//!   static-cluster reference exactly.
//! * **Failure detection** — the heartbeat monitor notices a silently
//!   severed node over real TCP and repairs the directory around it.

use ccm_testkit::{
    fnv1a, remap_to_member, run_churn_torture, start_member_cluster, Backend, ChurnPlan, FNV_OFFSET,
};
use coopcache::core::{DirectoryKind, FileId, NodeId, ReplacementPolicy};
use coopcache::rt::store::read_file_direct;
use coopcache::rt::{Catalog, MemberState, Membership, RtConfig, SyntheticStore};
use coopcache::simcore::Rng;
use coopcache::traces::{Preset, Workload};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The acceptance scale: a 32-slot cluster with 24 initial members.
const SLOTS: usize = 32;
const INITIAL: usize = 24;
const OPS: u64 = 240;
const CAPACITY_BLOCKS: usize = 12;
const EVENTS: usize = 10;

/// Trim a preset to a head small enough for a live cluster while keeping
/// its popularity skew (same device as the live-conformance suite).
fn preset_head(p: Preset) -> Workload {
    p.workload().head(96)
}

/// CI shards the four presets across a matrix via `CHURN_PRESET_SHARD=<k>`
/// (mod 2); all four run locally when the variable is unset.
fn sharded_presets() -> Vec<Preset> {
    let shard: Option<usize> = std::env::var("CHURN_PRESET_SHARD")
        .ok()
        .and_then(|v| v.parse().ok());
    Preset::all()
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| shard.is_none_or(|k| i % 2 == k))
        .map(|(_, p)| p)
        .collect()
}

fn member_config(nodes: usize, backend: Backend) -> RtConfig {
    RtConfig {
        nodes,
        capacity_blocks: CAPACITY_BLOCKS,
        policy: ReplacementPolicy::MasterPreserving,
        fetch_timeout: backend.torture_fetch_timeout(),
        faults: None,
        ..RtConfig::default()
    }
}

/// Byte integrity under churn at acceptance scale: every preset, both
/// backends, a seeded 10-event join/leave/crash schedule — every delivered
/// byte exact, every transition epoch-counted, and the hint directory
/// exercised (the battery as a whole must manufacture stale hints).
#[test]
fn churn_torture_serves_every_preset_exactly_on_both_backends() {
    let mut stale_total = 0u64;
    for (i, preset) in sharded_presets().into_iter().enumerate() {
        let wl = preset_head(preset);
        let seed = 0xC0DE + i as u64;
        let plan = ChurnPlan::seeded(seed, SLOTS, INITIAL, OPS, EVENTS);
        for backend in Backend::all() {
            let out = run_churn_torture(backend, seed, &plan, &wl, OPS, CAPACITY_BLOCKS);
            assert_eq!(
                out.joins + out.leaves + out.crashes,
                EVENTS,
                "{} {}: plan events not all executed",
                backend.name(),
                preset.name()
            );
            assert_eq!(
                out.epoch,
                EVENTS as u64,
                "{} {}: epoch must tick once per transition",
                backend.name(),
                preset.name()
            );
            assert!(
                out.hints.lookups > 0,
                "{} {}: hint directory never consulted",
                backend.name(),
                preset.name()
            );
            assert_ne!(out.digest, FNV_OFFSET, "no bytes were served");
            stale_total += out.hints.stale;
        }
    }
    assert!(
        stale_total > 0,
        "churn never manufactured a stale hint anywhere in the battery"
    );
}

/// Replayability: the same seed reproduces a bit-identical outcome across
/// reruns, and the TCP backend agrees with the channel backend bit for bit
/// — digest, protocol counters, hint counters, epoch.
#[test]
fn same_seed_churn_replay_is_bit_identical_across_runs_and_backends() {
    let wl = preset_head(Preset::Calgary);
    let plan = ChurnPlan::seeded(7, SLOTS, INITIAL, OPS, EVENTS);
    let a = run_churn_torture(Backend::Channel, 7, &plan, &wl, OPS, CAPACITY_BLOCKS);
    let b = run_churn_torture(Backend::Channel, 7, &plan, &wl, OPS, CAPACITY_BLOCKS);
    assert_eq!(a, b, "channel reruns must be bit-identical");
    let t = run_churn_torture(Backend::Tcp, 7, &plan, &wl, OPS, CAPACITY_BLOCKS);
    assert_eq!(a, t, "TCP churn outcome diverges from channel");
}

/// Re-mastering property (many seeds, small clusters): after *any* seeded
/// join/leave/crash sequence the quiescent audit inside the driver proves
/// exactly-one-master per resident block and hint convergence within one
/// forwarding chain. The seeds must collectively explore both directions.
#[test]
fn remastering_converges_for_any_seeded_schedule() {
    let wl = Preset::Clarknet.workload().head(48);
    let (mut joins, mut removals) = (0usize, 0usize);
    for seed in 0..6u64 {
        let plan = ChurnPlan::seeded(seed, 8, 4, 120, 8);
        let out = run_churn_torture(Backend::Channel, seed, &plan, &wl, 120, 8);
        assert_eq!(out.epoch, 8, "seed {seed}: epoch mismatch");
        joins += out.joins;
        removals += out.leaves + out.crashes;
    }
    assert!(
        joins > 0 && removals > 0,
        "schedules never explored both join and removal ({joins} joins, {removals} removals)"
    );
}

/// Join transparency at 32 nodes: node 31 starts cold, joins halfway
/// through a deterministic trace replay, absorbs a re-mastered share of
/// the resident blocks, and the delivered-byte digest matches a
/// static-cluster run of the same seed exactly.
#[test]
fn mid_run_join_at_32_nodes_matches_static_cluster_digest() {
    let wl = preset_head(Preset::Nasa);
    let seed = 0xA11CE;

    // Static reference: all 32 slots up from op 0, no churn.
    let static_plan = ChurnPlan {
        slots: SLOTS,
        initial: SLOTS,
        events: vec![],
    };
    let reference = run_churn_torture(
        Backend::Channel,
        seed,
        &static_plan,
        &wl,
        OPS,
        CAPACITY_BLOCKS,
    );

    // Churned run: 31 members, the last slot joins at the midpoint. The
    // driver consumes the *same* rng stream (remap_to_member burns one
    // slot draw per op either way), so equal digests mean the join was
    // invisible to every delivered byte.
    let catalog = Catalog::new(wl.sizes().to_vec());
    let store = Arc::new(SyntheticStore::new(catalog.clone(), seed));
    let cluster = start_member_cluster(
        Backend::Channel,
        member_config(SLOTS, Backend::Channel),
        catalog.clone(),
        store.clone(),
        Membership::with_initial(SLOTS, SLOTS - 1),
        DirectoryKind::Hint,
    );
    let members = cluster.membership();
    let joiner = NodeId((SLOTS - 1) as u16);
    let mut rng = Rng::new(seed).substream(3);
    let mut digest = FNV_OFFSET;
    for op in 0..OPS {
        if op == OPS / 2 {
            let moved = cluster.join_node(joiner);
            assert!(moved > 0, "joiner absorbed no re-mastered blocks");
            cluster.check_invariants();
            cluster.audit_quiescent();
        }
        let node = remap_to_member(&members, SLOTS, rng.next_below(SLOTS as u64) as usize);
        let file = FileId(wl.sample(&mut rng).0);
        let got = cluster.handle(node).read_file(file);
        let want = read_file_direct(&*store, &catalog, file);
        assert_eq!(got, want, "op {op}: corrupted bytes around the join");
        fnv1a(&mut digest, &got);
        cluster.quiesce();
    }
    cluster.quiesce();
    cluster.audit_quiescent();
    assert_eq!(
        digest, reference.digest,
        "mid-run join changed the delivered bytes"
    );
    assert_eq!(cluster.epoch(), 1, "exactly one transition must have fired");
    cluster.shutdown();
}

/// Failure detection over real TCP: a silently severed node (service
/// thread killed, no membership notice) is walked Up → Suspect → Down by
/// the heartbeat monitor, the directory is repaired around it, and the
/// survivors keep serving exact bytes.
#[test]
fn heartbeat_detects_silent_failure_over_tcp() {
    let wl = preset_head(Preset::Calgary);
    let catalog = Catalog::new(wl.sizes().to_vec());
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 9));
    let nodes = 8;
    let cluster = start_member_cluster(
        Backend::Tcp,
        member_config(nodes, Backend::Tcp),
        catalog.clone(),
        store.clone(),
        Membership::all_up(nodes),
        DirectoryKind::Hint,
    );
    // Warm the cluster so the victim owns masters worth repairing.
    let mut rng = Rng::new(9).substream(4);
    for _ in 0..60 {
        let node = NodeId(rng.next_below(nodes as u64) as u16);
        let file = FileId(wl.sample(&mut rng).0);
        let got = cluster.handle(node).read_file(file);
        assert_eq!(got, read_file_direct(&*store, &catalog, file));
    }
    cluster.quiesce();

    let victim = NodeId(5);
    let epoch0 = cluster.epoch();
    cluster.sever_node(victim);
    cluster.start_heartbeat(Duration::from_millis(5), Duration::from_millis(50), 2);
    let members = cluster.membership();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut epoch = epoch0;
    while members.state(victim) != MemberState::Down {
        assert!(
            Instant::now() < deadline,
            "heartbeat monitor never detected the severed node"
        );
        epoch = members.wait_for_epoch(epoch + 1, Duration::from_millis(200));
    }
    assert!(cluster.stats().node_repairs >= 1, "no directory repair ran");
    cluster.check_invariants();
    // Survivors still serve exact bytes after the repair.
    for i in 0..nodes {
        let node = NodeId(i as u16);
        if node == victim {
            continue;
        }
        let file = FileId(wl.sample(&mut rng).0);
        let got = cluster.handle(node).read_file(file);
        assert_eq!(got, read_file_direct(&*store, &catalog, file));
    }
    cluster.shutdown();
}
