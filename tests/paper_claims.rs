//! Integration tests pinning the paper's qualitative claims at reduced
//! scale (so they run in debug CI). The full-scale shapes are regenerated
//! by `ccm-bench` and recorded in EXPERIMENTS.md.

use coopcache::traces::SynthConfig;
use coopcache::webserver::{self, CcmVariant, RunMetrics, ServerKind, SimConfig};
use std::sync::Arc;

fn workload() -> Arc<coopcache::traces::Workload> {
    Arc::new(
        SynthConfig {
            name: "claims".into(),
            n_files: 1_000,
            total_bytes: Some(48 << 20),
            ..SynthConfig::default()
        }
        .build(),
    )
}

fn run(server: ServerKind, nodes: usize, mem_mb: u64) -> RunMetrics {
    let mut cfg = SimConfig::paper(server, nodes, mem_mb << 20);
    cfg.clients_per_node = 16;
    cfg.warmup_requests = 12_000;
    cfg.measure_requests = 12_000;
    webserver::run(&cfg, &workload())
}

/// §5: "-Basic's performance lags that of [L2S] significantly."
#[test]
fn basic_lags_l2s_significantly_when_memory_is_scarce() {
    let l2s = run(ServerKind::L2s { handoff: true }, 4, 4);
    let basic = run(ServerKind::Ccm(CcmVariant::basic()), 4, 4);
    assert!(
        basic.throughput_rps < 0.6 * l2s.throughput_rps,
        "basic {} vs l2s {}",
        basic.throughput_rps,
        l2s.throughput_rps
    );
}

/// §5: the disk-queue fix recovers part of the gap; the replacement
/// modification recovers most of the rest.
#[test]
fn variant_ordering_matches_figure_2() {
    let basic = run(ServerKind::Ccm(CcmVariant::basic()), 4, 8);
    let sched = run(ServerKind::Ccm(CcmVariant::scheduled()), 4, 8);
    let mp = run(ServerKind::Ccm(CcmVariant::master_preserving()), 4, 8);
    assert!(
        basic.throughput_rps < sched.throughput_rps,
        "basic {} !< sched {}",
        basic.throughput_rps,
        sched.throughput_rps
    );
    assert!(
        sched.throughput_rps <= mp.throughput_rps * 1.05,
        "sched {} !<= mp {}",
        sched.throughput_rps,
        mp.throughput_rps
    );
}

/// §5: the master-preserving variant achieves much of L2S's throughput.
#[test]
fn mp_is_competitive_with_l2s() {
    let l2s = run(ServerKind::L2s { handoff: true }, 4, 8);
    let mp = run(ServerKind::Ccm(CcmVariant::master_preserving()), 4, 8);
    let ratio = mp.throughput_rps / l2s.throughput_rps;
    assert!(ratio > 0.6, "mp/l2s = {ratio:.2}");
}

/// §5 / Figure 4: mp's hit rate approaches L2S's, but the hits are mostly
/// remote, while L2S's are all local.
#[test]
fn mp_hits_are_mostly_remote() {
    let mp = run(ServerKind::Ccm(CcmVariant::master_preserving()), 4, 8);
    assert!(
        mp.remote_hit_rate > mp.local_hit_rate,
        "local {} remote {}",
        mp.local_hit_rate,
        mp.remote_hit_rate
    );
    let l2s = run(ServerKind::L2s { handoff: true }, 4, 8);
    assert_eq!(l2s.remote_hit_rate, 0.0);
}

/// With aggregate memory far above the file set, every server converges to
/// compute-bound throughput and low disk rates.
#[test]
fn all_servers_converge_when_memory_is_plentiful() {
    let l2s = run(ServerKind::L2s { handoff: true }, 4, 64);
    let mp = run(ServerKind::Ccm(CcmVariant::master_preserving()), 4, 64);
    assert!(l2s.disk_rate < 0.05, "l2s disk {}", l2s.disk_rate);
    assert!(mp.disk_rate < 0.05, "mp disk {}", mp.disk_rate);
    let ratio = mp.throughput_rps / l2s.throughput_rps;
    assert!(ratio > 0.8, "mp/l2s = {ratio:.2} at full memory");
}

/// §5 / Figure 5: mp's average response time is somewhat worse than L2S's
/// (extra network round trips), but of the same order.
#[test]
fn mp_response_time_is_same_order_as_l2s() {
    let l2s = run(ServerKind::L2s { handoff: true }, 4, 64);
    let mp = run(ServerKind::Ccm(CcmVariant::master_preserving()), 4, 64);
    assert!(
        mp.mean_response_ms >= l2s.mean_response_ms * 0.8,
        "mp unexpectedly faster: {} vs {}",
        mp.mean_response_ms,
        l2s.mean_response_ms
    );
    assert!(
        mp.mean_response_ms <= l2s.mean_response_ms * 3.0,
        "mp far slower: {} vs {}",
        mp.mean_response_ms,
        l2s.mean_response_ms
    );
}

/// §5 / Figure 6(a): the network is never the bottleneck.
#[test]
fn network_stays_mostly_idle() {
    for mem in [4, 64] {
        let mp = run(ServerKind::Ccm(CcmVariant::master_preserving()), 4, mem);
        assert!(
            mp.utilization.nic < 0.5,
            "nic {} at {} MB",
            mp.utilization.nic,
            mem
        );
    }
}

/// §5 / Figure 6(b): adding nodes (CPU + memory) increases throughput.
#[test]
fn throughput_scales_with_cluster_size() {
    let small = run(ServerKind::Ccm(CcmVariant::master_preserving()), 4, 8);
    let large = run(ServerKind::Ccm(CcmVariant::master_preserving()), 8, 8);
    assert!(
        large.throughput_rps > 1.3 * small.throughput_rps,
        "4 nodes {} vs 8 nodes {}",
        small.throughput_rps,
        large.throughput_rps
    );
}

/// Full runs are exactly reproducible from the seed.
#[test]
fn simulations_are_deterministic() {
    let a = run(ServerKind::Ccm(CcmVariant::master_preserving()), 4, 16);
    let b = run(ServerKind::Ccm(CcmVariant::master_preserving()), 4, 16);
    assert_eq!(a.throughput_rps, b.throughput_rps);
    assert_eq!(a.mean_response_ms, b.mean_response_ms);
    assert_eq!(a.disk_seeks, b.disk_seeks);
    assert_eq!(a.forwards, b.forwards);
}
