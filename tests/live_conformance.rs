//! The live-conformance suite: the *running* cluster must reproduce the
//! pure protocol's caching behavior on real trace workloads.
//!
//! `tests/runtime_vs_protocol.rs` proves the runtime's decisions equal the
//! bare [`ClusterCache`]'s on a synthetic catalog. This suite closes the
//! remaining gap to the paper's experiments: the *same seeded preset
//! replay* (`ccm-load`'s recorded stream, warm-up/measurement split and
//! all) is driven through both the pure-protocol simulator
//! ([`ccm_load::simulate`]) and a live middleware cluster
//! ([`ccm_load::run`]), across two presets, two memory points, and all
//! three replacement policies, asserting:
//!
//! * **Exact stats transfer** — the live measurement-window counters equal
//!   the simulator's bit for bit, with zero data-plane fallbacks, so every
//!   figure the simulator produces is a statement about the real server.
//! * **Ordering transfer** — the paper's policy ranking (master-preserving
//!   ≥ N-chance ≥ global-LRU on cluster hit ratio) holds *live* at every
//!   tested memory point because the underlying counters match.
//! * **Byte integrity** — every request's payload is verified against the
//!   backing store inside the driver (a corrupt serve panics the run).
//! * **Report determinism** — the same seed reproduces a bit-identical
//!   deterministic run report, on the channel backend and over TCP.

use ccm_load::{run, run_on, simulate, LoadSpec, SimReport};
use ccm_net::TcpLan;
use coopcache::core::ReplacementPolicy;
use coopcache::traces::Preset;
use std::sync::Arc;

/// The policy ladder, worst to best in the paper's figures.
const POLICIES: [ReplacementPolicy; 3] = [
    ReplacementPolicy::GlobalLru,
    ReplacementPolicy::NChance { chances: 2 },
    ReplacementPolicy::MasterPreserving,
];

/// The tested grid: two presets at two per-node memory points each — one
/// scarce (heavy eviction pressure) and one moderate, both well below the
/// working set so cooperation is the difference between policies.
fn grid() -> Vec<LoadSpec> {
    let mut cells = Vec::new();
    for preset in [Preset::Calgary, Preset::Rutgers] {
        for capacity in [24, 64] {
            let mut spec = LoadSpec::new(preset);
            spec.head_files = Some(240);
            spec.capacity_blocks = capacity;
            spec.warmup_requests = 400;
            spec.measure_requests = 900;
            spec.seed = 0x5EED;
            spec.deterministic = true;
            cells.push(spec);
        }
    }
    cells
}

/// Every grid cell, live vs. simulator, for all three policies: the
/// measurement-window statistics must transfer exactly, and therefore so
/// must the paper's policy ordering.
#[test]
fn live_stats_match_the_simulator_and_preserve_policy_ordering() {
    for cell in grid() {
        let mut ratios = Vec::new();
        for policy in POLICIES {
            let mut spec = cell.clone();
            spec.policy = policy;
            let sim: SimReport = simulate(&spec);
            let live = run(&spec);
            assert_eq!(
                live.measured, sim.measured,
                "{} cap {} {:?}: live counters diverge from the protocol",
                live.preset, spec.capacity_blocks, policy
            );
            assert_eq!(live.blocks, sim.blocks);
            assert_eq!(live.bytes, sim.bytes);
            assert_eq!(live.measured.store_fallbacks, 0);
            assert!(live.reconciled);
            assert!(
                live.measured.remote_hits > 0,
                "{} cap {}: cell never exercised cooperation",
                live.preset,
                spec.capacity_blocks
            );
            ratios.push((live.total_hit_ratio(), live.preset.clone()));
        }
        // POLICIES is ordered worst → best; the live ratios must be too.
        let (basic, nchance, mp) = (ratios[0].0, ratios[1].0, ratios[2].0);
        assert!(
            mp >= nchance && nchance >= basic,
            "{} cap {}: live hit ratios break the paper's ordering: \
             global-lru {basic:.4}, n-chance {nchance:.4}, master-preserving {mp:.4}",
            ratios[0].1,
            cell.capacity_blocks
        );
        assert!(
            mp > basic,
            "{} cap {}: master-preserving must strictly beat global-LRU \
             (got {mp:.4} vs {basic:.4})",
            ratios[0].1,
            cell.capacity_blocks
        );
    }
}

/// Report determinism: rerunning the same deterministic spec reproduces a
/// bit-identical report projection (counters, digest, reconciliation — no
/// wall-clock fields), and the TCP backend produces the same counters and
/// payload digest as the channel backend.
#[test]
fn deterministic_reports_reproduce_across_reruns_and_backends() {
    let mut spec = LoadSpec::new(Preset::Calgary);
    spec.head_files = Some(240);
    spec.capacity_blocks = 48;
    spec.warmup_requests = 300;
    spec.measure_requests = 600;
    spec.seed = 0x5EED;
    spec.deterministic = true;

    let a = run(&spec);
    let b = run(&spec);
    assert_eq!(
        a.deterministic_json(),
        b.deterministic_json(),
        "same seed must reproduce an identical run report"
    );

    let lan = Arc::new(TcpLan::loopback(spec.nodes).expect("bind loopback listeners"));
    let tcp = run_on(&spec, lan, "tcp");
    assert_eq!(
        tcp.measured, a.measured,
        "TCP counters diverge from channel"
    );
    assert_eq!(tcp.digest, a.digest, "TCP payload digest diverges");
    assert_eq!(tcp.bytes, a.bytes);
    assert!(tcp.reconciled);
}
