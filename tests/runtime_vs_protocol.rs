//! The threaded runtime and the pure protocol must agree.
//!
//! Driven single-threaded with the same access sequence, `ccm-rt`'s
//! middleware (threads, channels, real bytes) must produce *exactly* the
//! protocol statistics of a bare `ccm-core::ClusterCache` — the runtime adds
//! a data plane, not different caching decisions. Under concurrency it must
//! still deliver correct bytes, which `ccm-rt`'s own tests cover.

use coopcache::core::block::blocks_of_file;
use coopcache::core::{BlockId, CacheConfig, ClusterCache, FileId, NodeId, ReplacementPolicy};
use coopcache::rt::{Catalog, Middleware, RtConfig, SyntheticStore};
use coopcache::simcore::Rng;
use std::sync::Arc;

#[test]
fn runtime_matches_protocol_stats_single_threaded() {
    let nodes = 4;
    let cap = 32;
    let sizes: Vec<u64> = {
        let mut rng = Rng::new(3);
        (0..50).map(|_| rng.next_range(1, 3) * 8192).collect()
    };

    // Reference: the bare protocol.
    let mut reference = ClusterCache::new(CacheConfig::paper(
        nodes,
        cap,
        ReplacementPolicy::MasterPreserving,
    ));

    // Subject: the running middleware.
    let catalog = Catalog::new(sizes.clone());
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 9));
    let mw = Middleware::start(
        RtConfig {
            nodes,
            capacity_blocks: cap,
            policy: ReplacementPolicy::MasterPreserving,
            ..RtConfig::default()
        },
        catalog,
        store,
    );

    let mut rng = Rng::new(11);
    for _ in 0..2_000 {
        let node = NodeId(rng.next_below(nodes as u64) as u16);
        let file = FileId(rng.next_below(50) as u32);
        for b in 0..blocks_of_file(sizes[file.0 as usize]) {
            reference.access(node, BlockId::new(file, b));
        }
        mw.handle(node).read_file(file);
    }

    let want = reference.stats();
    let got = mw.stats();
    assert_eq!(got.local_hits, want.local_hits, "local hits diverged");
    assert_eq!(got.remote_hits, want.remote_hits, "remote hits diverged");
    assert_eq!(got.disk_reads, want.disk_reads, "disk reads diverged");
    assert_eq!(got.forwards, want.forwards, "forwards diverged");
    assert_eq!(got.evict_drops, want.evict_drops, "evictions diverged");
    assert_eq!(
        mw.store_fallbacks(),
        0,
        "single-threaded use must never race"
    );
    mw.check_invariants();
    reference.check_invariants();
    mw.shutdown();
}

#[test]
fn runtime_serves_a_preset_workload() {
    // End-to-end: a calibrated preset's head (the hot files a real service
    // would see) served through the middleware, bytes verified.
    let preset = coopcache::traces::Preset::Calgary.workload();
    let sizes: Vec<u64> = preset.sizes()[..200].to_vec();
    let catalog = Catalog::new(sizes);
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 1));
    let mw = Middleware::start(
        RtConfig {
            nodes: 4,
            capacity_blocks: 128,
            policy: ReplacementPolicy::MasterPreserving,
            ..RtConfig::default()
        },
        catalog.clone(),
        store.clone(),
    );

    let mut rng = Rng::new(5);
    for i in 0..1_000u64 {
        let f = FileId(rng.next_below(200) as u32);
        let got = mw.handle(NodeId((i % 4) as u16)).read_file(f);
        assert_eq!(got.len() as u64, catalog.size_of(f));
    }
    let s = mw.stats();
    assert!(s.remote_hits > 0, "cooperation should have happened");
    assert!(
        s.total_hit_rate() > 0.5,
        "hot head should mostly hit: {}",
        s.total_hit_rate()
    );
    mw.shutdown();
}
