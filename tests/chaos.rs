//! The torture harness: deterministic fault injection over the threaded
//! runtime, checked by an integrity oracle.
//!
//! Every run drives reads through a [`Middleware`] cluster whose LAN drops,
//! duplicates, and reorders data-plane messages per a seeded [`FaultPlan`],
//! and whose nodes crash and rejoin on the plan's schedule. Two oracles:
//!
//! * **Integrity** — every byte delivered under any fault schedule equals
//!   the catalog ground truth (`read_file_direct` on the backing store), and
//!   the directory invariants hold after every repair.
//! * **Replayability** — the same seed produces bit-identical `CacheStats`
//!   and `ChaosStats` across runs. The driver quiesces the data plane after
//!   each operation for this mode, so the store state every decision reads
//!   is a pure function of the operation history.
//!
//! The cluster spin-up, fixture, and torture driver live in `ccm-testkit`,
//! shared with the socket-mode suites ([`Backend::Channel`] here).

use ccm_testkit::{dump_trace, fixture, run_torture, Backend};
use coopcache::core::{FileId, NodeId, ReplacementPolicy};
use coopcache::rt::store::read_file_direct;
use coopcache::rt::{ChaosStats, DiskFaults, FaultPlan, Middleware, RtConfig};
use coopcache::simcore::Rng;
use std::sync::Arc;
use std::time::Duration;

const BACKEND: Backend = Backend::Channel;

/// The integrity oracle over many seeds: 20% drops, duplication, reordering,
/// and one crash/restart per run — every byte must still be exact.
#[test]
fn every_seed_delivers_exact_bytes_under_torture() {
    for seed in 0..8 {
        let out = run_torture(BACKEND, seed, 3, 160, false, DiskFaults::NONE);
        assert!(out.chaos.dropped > 0, "seed {seed}: drops must fire");
        assert_eq!(out.crashes, 1, "seed {seed}: plan schedules one crash");
        assert_eq!(out.restarts, 1, "seed {seed}: crashed node must rejoin");
        assert!(out.stats.node_repairs >= 1);
        assert!(
            out.stats.store_fallbacks > 0,
            "seed {seed}: lost messages must surface as store fallbacks"
        );
    }
}

/// The replayability oracle: the same `FaultPlan` seed produces bit-identical
/// statistics — protocol counters and injected-fault counts — across runs.
#[test]
fn same_seed_is_bit_identical_across_runs() {
    for seed in [3, 11] {
        let a = run_torture(BACKEND, seed, 3, 120, true, DiskFaults::NONE);
        let b = run_torture(BACKEND, seed, 3, 120, true, DiskFaults::NONE);
        assert_eq!(a, b, "seed {seed}: reruns must be bit-identical");
        assert!(a.chaos.dropped > 0);
        assert_eq!(a.crashes, 1);
    }
}

/// Different seeds must actually explore different schedules (sanity check
/// that the plan derivation is not collapsing).
#[test]
fn seeds_explore_different_fault_schedules() {
    let outs: Vec<ChaosStats> = (0..4)
        .map(|s| run_torture(BACKEND, s, 3, 120, false, DiskFaults::NONE).chaos)
        .collect();
    assert!(
        outs.windows(2).any(|w| w[0] != w[1]),
        "all seeds injected identical faults: {outs:?}"
    );
}

/// Disk faults on top of the link faults: every node's disk service injects
/// slow reads and I/O errors (decided by a pure hash of the plan seed and
/// the block), yet every delivered byte must still equal the ground truth —
/// an injected error degrades to a synchronous store retry, never to
/// corruption.
#[test]
fn disk_faults_never_corrupt_bytes_under_torture() {
    let disk = DiskFaults {
        slow_prob: 0.05,
        slow: Duration::from_millis(2),
        error_prob: 0.25,
    };
    for seed in 0..4 {
        let out = run_torture(BACKEND, seed, 3, 120, false, disk);
        assert!(out.chaos.dropped > 0, "seed {seed}: link faults must fire");
        assert!(
            out.disk_fallbacks > 0,
            "seed {seed}: injected disk errors must surface as store retries"
        );
        assert_eq!(out.crashes, 1);
        assert_eq!(out.restarts, 1);
    }
}

/// Replayability with disk faults in the mix: the error-marked block set is
/// a pure function of the seed, so the quiesced driver must reproduce the
/// exact disk-fallback count along with every other statistic.
#[test]
fn disk_fault_replay_is_bit_identical() {
    let disk = DiskFaults {
        slow_prob: 0.10,
        slow: Duration::from_millis(1),
        error_prob: 0.30,
    };
    for seed in [5, 13] {
        let a = run_torture(BACKEND, seed, 3, 100, true, disk);
        let b = run_torture(BACKEND, seed, 3, 100, true, disk);
        assert_eq!(
            a, b,
            "seed {seed}: disk-faulted reruns must be bit-identical"
        );
        assert!(a.disk_fallbacks > 0, "seed {seed}: error faults must fire");
    }
}

/// Concurrent stress: reader threads hammer never-crashed nodes while the
/// fault plan's victim crashes and rejoins mid-run. Integrity and directory
/// invariants only — counters are timing-dependent here. Release mode:
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "stress test; run with --release -- --ignored"]
fn concurrent_readers_survive_crashes_and_lossy_links() {
    // CI shards the 8 seeds across a matrix via CHAOS_SEED_SHARD=<k> (mod 3);
    // run all of them locally when the variable is unset.
    let shard: Option<u64> = std::env::var("CHAOS_SEED_SHARD")
        .ok()
        .and_then(|v| v.parse().ok());
    for seed in (0..8u64).filter(|s| shard.is_none_or(|k| s % 3 == k)) {
        let (catalog, store) = fixture(seed);
        let n_files = catalog.num_files() as u64;
        let nodes = 4;
        let plan = FaultPlan::torture(seed, nodes, 400);
        let victims: Vec<NodeId> = plan.crashes.iter().map(|c| c.node).collect();
        let schedule = plan.crashes.clone();
        let mw = Arc::new(Middleware::start(
            RtConfig {
                nodes,
                capacity_blocks: 24,
                policy: ReplacementPolicy::MasterPreserving,
                fetch_timeout: BACKEND.torture_fetch_timeout(),
                faults: Some(plan),
                ..RtConfig::default()
            },
            catalog.clone(),
            store.clone(),
        ));

        let readers: Vec<_> = (0..nodes)
            .map(|i| NodeId(i as u16))
            .filter(|n| !victims.contains(n))
            .map(|node| {
                let mw = mw.clone();
                let store = store.clone();
                let catalog = catalog.clone();
                std::thread::spawn(move || {
                    let mut rng = Rng::new(seed).substream(100 + node.index() as u64);
                    for op in 0..200 {
                        let file = FileId(rng.next_below(n_files) as u32);
                        let (got, reqs) = mw.handle(node).read_file_traced(file);
                        let want = read_file_direct(&*store, &catalog, file);
                        if got != want {
                            dump_trace(&mw, &reqs);
                            panic!(
                                "seed {seed} node {node:?} op {op}: corrupted bytes \
                                 (trace for request ids {reqs:?} dumped above)"
                            );
                        }
                    }
                })
            })
            .collect();

        // Crash and rejoin the scheduled victims while the readers run.
        for ev in &schedule {
            std::thread::sleep(Duration::from_millis(30));
            mw.crash_node(ev.node);
            mw.check_invariants();
            if ev.restart_at_op.is_some() {
                std::thread::sleep(Duration::from_millis(30));
                mw.restart_node(ev.node);
                mw.check_invariants();
            }
        }
        for r in readers {
            r.join().expect("reader thread failed the integrity oracle");
        }
        mw.quiesce();
        mw.check_invariants();
        // After the dust settles every file must still read exact, through
        // every node — including the revived victim.
        for i in 0..nodes {
            let node = NodeId(i as u16);
            assert!(mw.is_alive(node));
            for f in (0..n_files).step_by(7) {
                let file = FileId(f as u32);
                let got = mw.handle(node).read_file(file);
                let want = read_file_direct(&*store, &catalog, file);
                assert_eq!(got, want, "seed {seed}: post-run read corrupted");
            }
        }
        mw.check_invariants();
    }
}
