//! Real-trace pipeline: synthesize a Common Log Format access log, load it,
//! and check the derived workload feeds the rest of the stack.

use coopcache::simcore::Rng;
use coopcache::traces::{clf, ReplaySource, RequestSource, TraceStats, WorkingSetCurve};

/// Fabricate a CLF log with Zipf-ish popularity over 50 paths.
fn fake_log(lines: usize, seed: u64) -> String {
    let mut rng = Rng::new(seed);
    let mut out = String::new();
    for i in 0..lines {
        let u = rng.next_f64();
        let doc = ((u * u) * 50.0) as u32; // skewed toward low ids
        let size = 1_000 + doc * 137;
        out.push_str(&format!(
            "host{} - - [01/Jul/2001:12:00:{:02} -0400] \"GET /doc{}.html HTTP/1.0\" 200 {}\n",
            i % 7,
            i % 60,
            doc,
            size
        ));
    }
    // Some dirt the parser must tolerate.
    out.push_str("garbage line that is not CLF\n");
    out.push_str("h - - [x] \"POST /form HTTP/1.0\" 200 55\n");
    out.push_str("h - - [x] \"GET /missing.html HTTP/1.0\" 404 0\n");
    out
}

#[test]
fn log_loads_and_ranks_by_popularity() {
    let t = clf::load(&fake_log(5_000, 1), "fake");
    assert_eq!(t.skipped, 3);
    assert_eq!(t.requests.len(), 5_000);
    assert!(t.workload.num_files() <= 50);
    // Rank 0 must be at least as popular as every later rank.
    let p0 = t.workload.popularity(coopcache::traces::FileId(0));
    for r in 1..t.workload.num_files() as u32 {
        assert!(p0 >= t.workload.popularity(coopcache::traces::FileId(r)));
    }
}

#[test]
fn loaded_workload_supports_analysis() {
    let t = clf::load(&fake_log(5_000, 2), "fake");
    let stats = TraceStats::of(&t.workload);
    assert!(stats.avg_file_size > 0.0);
    assert!(stats.avg_request_size > 0.0);
    let curve = WorkingSetCurve::compute(&t.workload, 50);
    let last = curve.points().last().unwrap();
    assert!((last.request_fraction - 1.0).abs() < 1e-9);
    assert_eq!(last.cumulative_bytes, t.workload.total_bytes());
}

#[test]
fn replay_source_cycles_the_log() {
    let t = clf::load(&fake_log(100, 3), "fake");
    let seq: std::sync::Arc<[coopcache::traces::FileId]> = t.requests.clone().into();
    let mut src = ReplaySource::new(seq.clone(), 0);
    let first: Vec<_> = (0..100).map(|_| src.next_request()).collect();
    let again: Vec<_> = (0..100).map(|_| src.next_request()).collect();
    assert_eq!(first, again, "replay wraps deterministically");
    assert_eq!(first.as_slice(), &seq[..]);
}

#[test]
fn loaded_workload_drives_the_protocol() {
    use coopcache::core::block::blocks_of_file;
    use coopcache::core::{BlockId, CacheConfig, ClusterCache, NodeId, ReplacementPolicy};

    let t = clf::load(&fake_log(2_000, 4), "fake");
    let mut cache = ClusterCache::new(CacheConfig::paper(
        4,
        64,
        ReplacementPolicy::MasterPreserving,
    ));
    let seq: std::sync::Arc<[coopcache::traces::FileId]> = t.requests.clone().into();
    let mut src = ReplaySource::new(seq, 0);
    for i in 0..4_000u64 {
        let f = src.next_request();
        let node = NodeId((i % 4) as u16);
        let size = t.workload.size_of(f);
        for b in 0..blocks_of_file(size) {
            cache.access(node, BlockId::new(coopcache::core::FileId(f.0), b));
        }
    }
    cache.check_invariants();
    assert!(
        cache.stats().total_hit_rate() > 0.5,
        "log replay should warm up"
    );
}
