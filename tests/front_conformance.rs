//! The live CCM-vs-L2S conformance suite: the paper's headline comparison
//! run over real HTTP, with every byte verified.
//!
//! `tests/live_conformance.rs` proves the live middleware reproduces the
//! simulator's counters. This suite makes the *comparison itself* live:
//! the same seeded preset replay is driven through `ccm-front`'s HTTP
//! front door against both backends —
//!
//! * **CCM**: round-robin (DNS-RR) arrival, master-preserving cooperative
//!   block caching behind it — the paper's middleware configuration,
//!   which needs no content-aware front tier at all;
//! * **live L2S**: the content-aware (locality-based) dispatch policy over
//!   whole-file per-node LRU caches with de-replication and no peer fetch
//!   — Bianchini & Carrera's server, the paper's baseline,
//!
//! at the same two per-node memory points the bare-middleware conformance
//! grid uses (scarce and plentiful), asserting the paper's shape:
//!
//! * At the plentiful point both architectures reach the same
//!   compulsory-miss ceiling, so CCM matches or beats the live L2S hit
//!   ratio on at least 3 of the 4 presets — while the dispatch-matched
//!   baseline (L2S behind the *same* DNS-RR arrival, i.e. locality
//!   routing switched off) stays pinned ~25 points below on every preset:
//!   cooperative caching aggregates cluster memory through peer fetches,
//!   L2S can only do it by moving the *requests* (TCP hand-off).
//! * At the scarce point cooperation is live (the CCM run's hits include
//!   remote hits; the L2S backend by construction has none) and the full
//!   L2S hit ratio may exceed CCM's — exactly the paper's Figure 4, where
//!   L2S's (all-local) hit rate tops master-preserving's and the paper's
//!   argument for CCM is served-throughput, not raw hit rate.
//!
//! Every response is byte-verified against the backing store inside the
//! driver, and the deterministic report projection is bit-identical
//! across reruns and across the channel/TCP cluster transports.

use ccm_front::PolicyKind;
use ccm_load::{run_front, run_front_on, BackendChoice, FrontReport, FrontSpec};
use ccm_net::TcpLan;
use coopcache::core::ReplacementPolicy;
use coopcache::traces::Preset;
use std::sync::Arc;

/// Scarce and plentiful per-node memory, in 8 KB blocks — the same two
/// points `tests/live_conformance.rs` runs the bare middleware at.
const SCARCE_BLOCKS: usize = 24;
const PLENTIFUL_BLOCKS: usize = 64;

/// One comparison cell: 4 nodes, a 240-file head, seeded deterministic
/// replay — identical stream and store for every backend/policy pairing.
fn cell(
    preset: Preset,
    capacity_blocks: usize,
    dispatch: PolicyKind,
    backend: BackendChoice,
) -> FrontSpec {
    let mut spec = FrontSpec::new(preset, dispatch, backend);
    spec.head_files = Some(240);
    spec.capacity_blocks = capacity_blocks;
    spec.warmup_requests = 400;
    spec.measure_requests = 900;
    spec.seed = 0x5EED;
    spec.deterministic = true;
    spec
}

fn ccm_cell(preset: Preset, capacity_blocks: usize) -> FrontSpec {
    cell(
        preset,
        capacity_blocks,
        PolicyKind::RoundRobin,
        BackendChoice::Ccm(ReplacementPolicy::MasterPreserving),
    )
}

fn checked(spec: &FrontSpec) -> FrontReport {
    let report = run_front(spec);
    assert!(
        report.reconciled,
        "{} {} {}: driver and front-tier counters disagree",
        report.backend, report.preset, report.dispatch
    );
    assert_eq!(report.requests, spec.measure_requests as u64);
    report
}

/// The paper's comparison, live, at the plentiful memory point: CCM
/// (master-preserving behind plain DNS-RR) matches or beats the full L2S
/// server (content-aware dispatch, whole-file caches) on cluster-memory
/// hit ratio on at least 3 of 4 presets, and the same L2S caches behind
/// the same DNS-RR arrival — locality routing switched off — collapse on
/// every preset. Cooperation aggregates memory; locality routing is the
/// only thing standing between L2S and that collapse.
#[test]
fn ccm_matches_or_beats_live_l2s_at_the_plentiful_point() {
    let mut wins = 0;
    let mut lines = Vec::new();
    for preset in Preset::all() {
        let ccm = checked(&ccm_cell(preset, PLENTIFUL_BLOCKS));
        let l2s = checked(&cell(
            preset,
            PLENTIFUL_BLOCKS,
            PolicyKind::ContentAware,
            BackendChoice::L2s,
        ));
        let l2s_rr = checked(&cell(
            preset,
            PLENTIFUL_BLOCKS,
            PolicyKind::RoundRobin,
            BackendChoice::L2s,
        ));
        // Same stream, same bytes, same block accounting basis.
        assert_eq!(ccm.digest, l2s.digest, "backends served different bytes");
        assert_eq!(ccm.blocks, l2s.blocks);
        let (c, l, lr) = (ccm.hit_ratio(), l2s.hit_ratio(), l2s_rr.hit_ratio());
        if c >= l {
            wins += 1;
        }
        assert!(
            c > lr + 0.15,
            "{}: without locality routing the whole-file baseline must \
             collapse well below cooperative caching (ccm {c:.4}, l2s/rr {lr:.4})",
            ccm.preset
        );
        assert!(
            l2s.handoffs > 0,
            "{}: the content-aware L2S run never moved a request off its \
             arrival node — locality routing was not exercised",
            l2s.preset
        );
        lines.push(format!(
            "  {:<18} ccm(rr) {:>6.2}%  l2s(ca) {:>6.2}%  l2s(rr) {:>6.2}%",
            ccm.preset,
            100.0 * c,
            100.0 * l,
            100.0 * lr
        ));
    }
    let table = lines.join("\n");
    println!("cluster-memory hit ratio at the plentiful point:\n{table}");
    assert!(
        wins >= 3,
        "cooperative caching must match or beat live L2S on at least 3 of 4 \
         presets (won {wins}):\n{table}"
    );
}

/// The scarce point: the paper's Figure-4 shape. The full L2S server's
/// all-local hit ratio may top CCM's here (whole-file byte accounting is
/// denser than 8 KB blocks on these sub-block hot sets, exactly as L2S's
/// hit rate tops master-preserving's in the paper) — but cooperation must
/// be live, byte service identical, and the dispatch-matched baseline
/// must still trail its content-aware self badly.
#[test]
fn scarce_point_reproduces_the_figure_4_shape() {
    for preset in [Preset::Calgary, Preset::Rutgers] {
        let ccm = checked(&ccm_cell(preset, SCARCE_BLOCKS));
        let l2s = checked(&cell(
            preset,
            SCARCE_BLOCKS,
            PolicyKind::ContentAware,
            BackendChoice::L2s,
        ));
        let l2s_rr = checked(&cell(
            preset,
            SCARCE_BLOCKS,
            PolicyKind::RoundRobin,
            BackendChoice::L2s,
        ));
        assert_eq!(ccm.digest, l2s.digest, "backends served different bytes");
        assert!(
            ccm.hits > 0 && ccm.hit_ratio() > 0.5,
            "{}: cooperative caching must keep the majority of block reads \
             in cluster memory even at the scarce point (got {:.4})",
            ccm.preset,
            ccm.hit_ratio()
        );
        assert!(
            l2s.hit_ratio() > l2s_rr.hit_ratio() + 0.10,
            "{}: content-aware routing is what carries L2S (ca {:.4}, rr {:.4})",
            l2s.preset,
            l2s.hit_ratio(),
            l2s_rr.hit_ratio()
        );
    }
}

/// Determinism transfer: the same deterministic front spec reproduces a
/// bit-identical report projection across reruns, and the cluster's
/// interconnect (channel vs TCP) never leaks into it.
#[test]
fn front_reports_reproduce_across_reruns_and_transports() {
    let spec = ccm_cell(Preset::Calgary, SCARCE_BLOCKS);
    let a = checked(&spec);
    let b = checked(&spec);
    assert_eq!(
        a.deterministic_json(),
        b.deterministic_json(),
        "same seed must reproduce an identical front report"
    );

    let lan = Arc::new(TcpLan::loopback(spec.nodes).expect("bind loopback listeners"));
    let tcp = run_front_on(&spec, lan, "tcp");
    assert!(tcp.reconciled);
    assert_eq!(tcp.transport, "tcp");
    assert_eq!(
        tcp.deterministic_json(),
        a.deterministic_json(),
        "the cluster transport must not change what was served"
    );
}
