//! The dirty-crash recovery battery: the write subsystem's durability
//! contract under seeded link faults and node crashes, on both LAN
//! backends.
//!
//! The contract under test (see `ccm-rt`'s `write` module):
//!
//! * **Write-through** — an acked write is on the store before the ack;
//!   crashes lose nothing, ever.
//! * **Write-back** — a crash may lose at most `dirty_budget` acked
//!   writes, and every loss is *detected*: the block appears in
//!   `lost_writes()`, and reads serve the last **persisted** image (the
//!   pristine base or an earlier flushed payload) — never garbage, and
//!   never a silent claim that the lost write survived.
//!
//! Oracles: byte integrity on every read against a shadow model of the
//! acked payloads (corrected for detected losses), the loss bound, the
//! persisted-image rule on every detected loss, bit-identical same-seed
//! replay, and cross-backend agreement.

use ccm_testkit::{fnv1a, Backend, FNV_OFFSET};
use coopcache::core::{BlockId, CacheStats, FileId, NodeId, ReplacementPolicy};
use coopcache::rt::store::{read_file_direct, MemStore, SyntheticStore};
use coopcache::rt::BlockStore;
use coopcache::rt::{Catalog, FaultPlan, Middleware, RtConfig, WriteConfig, WriteMode};
use coopcache::simcore::Rng;
use coopcache::traces::WriteMix;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

const NODES: usize = 4;
const OPS: u64 = 160;
const DIRTY_BUDGET: usize = 6;
const WRITE_RATIO: f64 = 0.3;

/// Everything observable from one write-torture run. `PartialEq` is the
/// replayability oracle: same seed, same backend (or the other backend)
/// must reproduce this bit for bit.
#[derive(Debug, PartialEq, Eq)]
struct WriteOutcome {
    /// FNV-1a digest over every delivered read plus the final full
    /// read-back of the catalog through the protocol.
    digest: u64,
    /// Protocol counters at the end of the run.
    stats: CacheStats,
    /// (writes, flushes, lost, recovered) from the runtime's write stats.
    writes: (u64, u64, u64, u64),
    /// Every block whose acked write was recorded lost, in block order.
    lost_blocks: Vec<BlockId>,
    /// Crash/restart events executed.
    crashes: usize,
}

/// Drive `OPS` deterministic mixed read/write operations through a faulted
/// cluster, crash one node at the midpoint and restart it at the 3/4
/// mark, and hold every read to the shadow oracle. Quiesces after every
/// operation so the outcome is a pure function of `(backend, seed, mode)`.
fn run_write_torture(backend: Backend, seed: u64, mode: WriteMode, faults: bool) -> WriteOutcome {
    let mut size_rng = Rng::new(seed).substream(1);
    let sizes: Vec<u64> = (0..24).map(|_| 1 + size_rng.next_below(12_000)).collect();
    let catalog = Catalog::new(sizes);
    let n_files = catalog.num_files() as u64;
    let store = Arc::new(MemStore::new(catalog.clone(), seed));
    let pristine = SyntheticStore::new(catalog.clone(), seed);
    let write_cfg = match mode {
        WriteMode::Through => WriteConfig::through(),
        WriteMode::Back => WriteConfig::back(DIRTY_BUDGET),
    };
    let cfg = RtConfig {
        nodes: NODES,
        capacity_blocks: 16,
        policy: ReplacementPolicy::MasterPreserving,
        fetch_timeout: backend.torture_fetch_timeout(),
        faults: faults.then(|| FaultPlan::torture(seed, NODES, OPS)),
        write: write_cfg,
        ..RtConfig::default()
    };
    let mw = match backend {
        Backend::Channel => Middleware::start(cfg, catalog.clone(), store.clone()),
        Backend::Tcp => {
            let lan =
                Arc::new(coopcache::net::TcpLan::loopback(NODES).expect("bind loopback listeners"));
            Middleware::start_on(cfg, catalog.clone(), store.clone(), lan)
        }
    };

    let mix = WriteMix::new(seed, WRITE_RATIO);
    let victim = NodeId((seed % NODES as u64) as u16);
    // The expected current bytes of every written block, corrected when a
    // crash demotes a block to its persisted image.
    let mut expected: HashMap<BlockId, Vec<u8>> = HashMap::new();
    // Every payload ever acked per block — the persisted-image rule says a
    // detected loss must read as one of these or the pristine base.
    let mut acked: HashMap<BlockId, Vec<Vec<u8>>> = HashMap::new();
    let mut seen_lost: BTreeSet<BlockId> = BTreeSet::new();
    let mut digest = FNV_OFFSET;
    let mut crashes = 0usize;
    let mut down = false;

    let mut op_rng = Rng::new(seed).substream(2);
    for op in 0..OPS {
        if op == OPS / 2 {
            mw.crash_node(victim);
            mw.check_invariants();
            down = true;
            crashes += 1;
            // Reconcile every loss the crash detected, on the spot.
            let lost_now: Vec<BlockId> = mw
                .lost_writes()
                .into_iter()
                .filter(|b| !seen_lost.contains(b))
                .collect();
            match mode {
                WriteMode::Through => {
                    assert!(lost_now.is_empty(), "write-through may never lose a write")
                }
                WriteMode::Back => assert!(
                    lost_now.len() <= DIRTY_BUDGET,
                    "crash lost {} writes, budget is {DIRTY_BUDGET}",
                    lost_now.len()
                ),
            }
            for b in lost_now {
                let img = store.read_block(b);
                let was_acked = acked.get(&b).is_some_and(|h| h.contains(&img));
                assert!(
                    img == pristine.read_block(b) || was_acked,
                    "lost block {b:?} persisted bytes are neither pristine nor \
                     a previously acked payload"
                );
                expected.insert(b, img);
                seen_lost.insert(b);
            }
        }
        if op == OPS * 3 / 4 {
            mw.restart_node(victim);
            mw.check_invariants();
            down = false;
        }

        let node = loop {
            let n = NodeId(op_rng.next_below(NODES as u64) as u16);
            if !(down && n == victim) {
                break n;
            }
        };
        let file = FileId(op_rng.next_below(n_files) as u32);
        if mix.is_write(op) {
            let block = BlockId::new(file, 0);
            let fill = (op as u8) ^ (file.0 as u8) ^ 0xB7;
            let payload = vec![fill; catalog.block_bytes(block) as usize];
            mw.handle(node)
                .write_block(block, &payload)
                .expect("MemStore accepts writes");
            acked.entry(block).or_default().push(payload.clone());
            expected.insert(block, payload);
        } else {
            let got = mw.handle(node).read_file(file);
            let mut want = read_file_direct(&*store, &catalog, file);
            for b in 0..coopcache::core::block::blocks_of_file(want.len() as u64) {
                if let Some(p) = expected.get(&BlockId::new(file, b)) {
                    let off = b as usize * coopcache::core::block::BLOCK_SIZE as usize;
                    want[off..off + p.len()].copy_from_slice(p);
                }
            }
            assert_eq!(
                got,
                want,
                "{} seed {seed} op {op}: file {file:?} diverged from the shadow",
                backend.name()
            );
            fnv1a(&mut digest, &got);
        }
        mw.quiesce();
    }

    // Drain the dirty set, then the whole catalog must read as the shadow
    // predicts — and every surviving acked payload must now be durable.
    mw.quiesce();
    mw.flush_dirty();
    assert_eq!(mw.dirty_blocks(), 0, "flush left the dirty set non-empty");
    mw.check_invariants();
    for (block, payload) in &expected {
        assert_eq!(
            &store.read_block(*block),
            payload,
            "block {block:?} not durable after the final flush"
        );
    }
    for f in 0..n_files {
        let file = FileId(f as u32);
        let got = mw.handle(NodeId(0)).read_file(file);
        fnv1a(&mut digest, &got);
    }

    let ws = mw.write_stats();
    let out = WriteOutcome {
        digest,
        stats: mw.stats(),
        writes: (ws.writes, ws.flushes, ws.lost, ws.recovered),
        lost_blocks: mw.lost_writes(),
        crashes,
    };
    mw.shutdown();
    out
}

/// CI shards the chaos seeds across a matrix via `WRITE_SEED_SHARD=<k>`
/// (mod 2); all seeds run locally when the variable is unset.
fn sharded_seeds() -> Vec<u64> {
    let shard: Option<u64> = std::env::var("WRITE_SEED_SHARD")
        .ok()
        .and_then(|v| v.parse().ok());
    (0..4u64)
        .filter(|s| shard.is_none_or(|k| s % 2 == k))
        .collect()
}

/// The durability contract under link faults and a mid-run crash, for
/// every seed shard on both backends: write-back losses stay within the
/// budget and are always detected with a persisted image (asserted inside
/// the driver), and the run must actually exercise writes and the crash.
#[test]
fn dirty_crash_durability_contract_holds_on_both_backends() {
    for seed in sharded_seeds() {
        for backend in Backend::all() {
            let out = run_write_torture(backend, seed, WriteMode::Back, true);
            assert_eq!(out.crashes, 1, "{} seed {seed}: no crash", backend.name());
            assert!(
                out.writes.0 > 0,
                "{} seed {seed}: no writes",
                backend.name()
            );
            assert!(
                out.writes.2 as usize <= DIRTY_BUDGET,
                "{} seed {seed}: lost {} > budget",
                backend.name(),
                out.writes.2
            );
        }
    }
}

/// Write-through under the same faults and crash: zero losses, every
/// acked payload durable the moment it was acked.
#[test]
fn write_through_crash_never_loses_an_acked_write() {
    for seed in sharded_seeds() {
        let out = run_write_torture(Backend::Channel, seed, WriteMode::Through, true);
        assert_eq!(out.writes.2, 0, "seed {seed}: write-through lost a write");
        assert!(out.lost_blocks.is_empty());
        assert_eq!(out.writes.1, 0, "write-through has nothing to flush");
        assert!(out.writes.0 > 0);
    }
}

/// Replayability: the same `(seed, mode)` produces a bit-identical
/// outcome — digest, protocol counters, write stats, and the exact set of
/// lost blocks — across reruns.
#[test]
fn same_seed_write_torture_is_bit_identical() {
    for seed in [3u64, 11] {
        let a = run_write_torture(Backend::Channel, seed, WriteMode::Back, true);
        let b = run_write_torture(Backend::Channel, seed, WriteMode::Back, true);
        assert_eq!(a, b, "seed {seed}: write-torture reruns diverged");
    }
}

/// Cross-backend agreement: loopback TCP must reproduce the channel
/// outcome bit for bit, losses included.
#[test]
fn channel_and_tcp_agree_on_write_outcomes() {
    let a = run_write_torture(Backend::Channel, 5, WriteMode::Back, true);
    let t = run_write_torture(Backend::Tcp, 5, WriteMode::Back, true);
    assert_eq!(a, t, "TCP write-torture outcome diverges from channel");
}

/// The graceful path loses nothing: a member that wrote dirty blocks and
/// then *leaves* (handoff, not crash) hands its masters over and flushes
/// its dirty set — zero lost masters, zero lost writes, every payload
/// durable.
#[test]
fn graceful_leave_loses_zero_masters_and_zero_writes() {
    let catalog = Catalog::new(vec![9_000; 12]);
    let store = Arc::new(MemStore::new(catalog.clone(), 77));
    let mw = Middleware::start(
        RtConfig {
            nodes: 3,
            capacity_blocks: 24,
            write: WriteConfig::back(32),
            ..RtConfig::default()
        },
        catalog.clone(),
        store.clone(),
    );
    let leaver = NodeId(1);
    let mut payloads = Vec::new();
    for f in 0..8u32 {
        let block = BlockId::new(FileId(f), 0);
        let payload = vec![(f as u8) ^ 0x3E; catalog.block_bytes(block) as usize];
        mw.handle(leaver)
            .write_block(block, &payload)
            .expect("write");
        payloads.push((block, payload));
    }
    mw.quiesce();
    mw.leave_node(leaver);
    mw.check_invariants();
    assert_eq!(mw.stats().lost_masters, 0, "leave lost a master");
    assert!(mw.lost_writes().is_empty(), "leave lost an acked write");
    mw.flush_dirty();
    for (block, payload) in &payloads {
        assert_eq!(&store.read_block(*block), payload, "{block:?} not durable");
        assert_eq!(
            &*mw.handle(NodeId(0)).read_block(*block),
            payload,
            "{block:?} reads stale after the leave"
        );
    }
    mw.shutdown();
}
